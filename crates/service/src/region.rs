//! Per-entry invalidation regions for the result cache.
//!
//! Every cached result carries an [`EntryRegion`]: the spatial evidence
//! needed to decide, for each incremental store update, whether the cached
//! answer could possibly change. The decision rules are *sound* — an entry
//! is only retained when the update provably cannot alter its result — and
//! lean on two facts of this workspace:
//!
//! 1. All distances are the vertex distance of Definition 3, so the
//!    [`FilterFootprint`] witness certificate exactly mirrors the strict
//!    comparisons the verification phase performs (see
//!    `rknnt_core::footprint`).
//! 2. Route *insertion* only adds "strictly closer" witnesses, so results
//!    can only shrink; route *removal* only removes witnesses, so results
//!    can only grow. Transition updates touch exactly one transition.
//!
//! Per update kind:
//!
//! * **Transition insert `(o, d)`** — the result gains the new transition
//!   only if an endpoint qualifies. Keep the entry when the footprint
//!   certifies the endpoints covered by ≥ k still-live routes (`∃`: both
//!   endpoints; `∀`: either endpoint suffices, since both must qualify).
//! * **Transition expiry** — affects exactly the entries whose result
//!   contains the expired id (qualification of other transitions depends
//!   only on routes). Exact membership test, no geometry needed.
//! * **Route insert** — can only evict transitions *from* results, which
//!   requires the new route to come strictly closer than the query to some
//!   recorded result endpoint. Keep the entry when the route's MBR stays at
//!   least [`EntryRegion::result_reach`] away from the recorded
//!   result-endpoint MBR.
//! * **Route removal** — results can grow anywhere a removed witness was
//!   load-bearing, which no bounded record can rule out in general (with
//!   k = 1 and a single far-away route, its removal changes answers
//!   arbitrarily far from the query). The service falls back to a full
//!   cache drop for this — rare in the modelled workload, where transitions
//!   churn and lines change seldom.

use rknnt_core::{FilterFootprint, RknntQuery, RknntResult, Semantics};
use rknnt_geo::{Point, Rect};
use rknnt_index::RouteStore;
use std::sync::Arc;

/// The invalidation evidence recorded with one cached result; see the
/// module documentation for the retention rules.
#[derive(Debug, Clone)]
pub struct EntryRegion {
    /// The query route (vertex list) the entry answers.
    pub query_points: Vec<Point>,
    /// The query's `k`.
    pub k: usize,
    /// The query's semantics.
    pub semantics: Semantics,
    /// Filter footprint reported by the engine, when one was built
    /// (Filter–Refine / Voronoi groups). `None` is handled conservatively:
    /// transition inserts always evict the entry.
    pub footprint: Option<Arc<FilterFootprint>>,
    /// MBR over both endpoints of every transition in the cached result
    /// ([`Rect::empty`] for an empty result).
    pub result_rect: Rect,
    /// Upper bound on the vertex distance from any point of
    /// [`EntryRegion::result_rect`] to the query route (0 for an empty
    /// result).
    pub result_reach: f64,
}

impl EntryRegion {
    /// A region with no footprint and no recorded result geometry: sound
    /// for any query, maximally conservative for transition inserts.
    pub fn conservative(query: &RknntQuery) -> Self {
        EntryRegion {
            query_points: query.route.clone(),
            k: query.k,
            semantics: query.semantics,
            footprint: None,
            result_rect: Rect::empty(),
            result_reach: 0.0,
        }
    }

    /// Builds the region for a freshly computed result, recording the
    /// result-endpoint MBR and its reach bound from the live stores.
    pub fn record(
        query: &RknntQuery,
        result: &RknntResult,
        footprint: Option<Arc<FilterFootprint>>,
        transitions: &rknnt_index::TransitionStore,
    ) -> Self {
        let mut result_rect = Rect::empty();
        for id in &result.transitions {
            if let Some(t) = transitions.get(*id) {
                result_rect.expand_to_point(&t.origin);
                result_rect.expand_to_point(&t.destination);
            }
        }
        // Upper bound on dist(p, Q) over p in result_rect: for the query
        // vertex q minimising it, every p is within max_dist(rect, q).
        let result_reach = if result_rect.is_empty() {
            0.0
        } else {
            query
                .route
                .iter()
                .map(|q| result_rect.max_dist(q))
                .fold(f64::INFINITY, f64::min)
        };
        EntryRegion {
            query_points: query.route.clone(),
            k: query.k,
            semantics: query.semantics,
            footprint,
            result_rect,
            result_reach,
        }
    }

    /// Whether the entry's query is degenerate (its result is the constant
    /// empty set, immune to store churn).
    fn is_degenerate(&self) -> bool {
        self.k == 0 || self.query_points.is_empty()
    }

    /// Whether the cached result provably survives inserting a transition
    /// with the given endpoints.
    pub fn survives_transition_insert(
        &self,
        routes: &RouteStore,
        origin: &Point,
        destination: &Point,
    ) -> bool {
        if self.is_degenerate() {
            return true;
        }
        let Some(footprint) = &self.footprint else {
            return false;
        };
        let live = |r| routes.route(r).is_some();
        let covered = |u: &Point| footprint.covers_point(&self.query_points, u, self.k, live);
        match self.semantics {
            // ∃: the transition qualifies if either endpoint does, so both
            // must be certified disqualified.
            Semantics::Exists => covered(origin) && covered(destination),
            // ∀: both endpoints must qualify, so one certificate suffices.
            Semantics::ForAll => covered(origin) || covered(destination),
        }
    }

    /// Whether the cached result provably survives removing the transition
    /// `id` — it does iff the result does not contain it.
    pub fn survives_transition_remove(
        &self,
        result: &RknntResult,
        id: rknnt_index::TransitionId,
    ) -> bool {
        !result.contains(id)
    }

    /// Whether the cached result provably survives inserting a route whose
    /// points have the given MBR: results only shrink on route insertion,
    /// and they shrink only if the new route comes strictly closer than the
    /// query to a recorded result endpoint — impossible when the route stays
    /// `result_reach` away from the result-endpoint MBR.
    pub fn survives_route_insert(&self, route_mbr: &Rect) -> bool {
        if self.result_rect.is_empty() {
            return true;
        }
        self.result_rect.min_dist_rect(route_mbr) >= self.result_reach
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_index::{TransitionId, TransitionStore};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn entry_with_result(result_ids: &[u32]) -> (EntryRegion, RknntResult) {
        let query = RknntQuery::exists(vec![p(0.0, 0.0), p(10.0, 0.0)], 2);
        let mut transitions = TransitionStore::default();
        let a = transitions.insert(p(1.0, 1.0), p(9.0, 1.0)).unwrap();
        let b = transitions.insert(p(2.0, 2.0), p(8.0, 2.0)).unwrap();
        let mut result = RknntResult::default();
        for id in result_ids {
            assert!([a, b].contains(&TransitionId(*id)));
            result.transitions.push(TransitionId(*id));
        }
        result.transitions.sort_unstable();
        let region = EntryRegion::record(&query, &result, None, &transitions);
        (region, result)
    }

    #[test]
    fn expiry_is_an_exact_membership_test() {
        let (region, result) = entry_with_result(&[0]);
        assert!(!region.survives_transition_remove(&result, TransitionId(0)));
        assert!(region.survives_transition_remove(&result, TransitionId(1)));
        assert!(region.survives_transition_remove(&result, TransitionId(999)));
    }

    #[test]
    fn route_insert_far_from_results_is_survived() {
        let (region, _) = entry_with_result(&[0, 1]);
        assert!(region.result_reach > 0.0);
        // A route far away cannot be closer than the query to any result
        // endpoint.
        let far = Rect::new(p(1_000.0, 1_000.0), p(1_100.0, 1_100.0));
        assert!(region.survives_route_insert(&far));
        // A route on top of the result endpoints must evict.
        let near = Rect::new(p(1.0, 1.0), p(9.0, 2.0));
        assert!(!region.survives_route_insert(&near));
        // Empty results survive any route insertion (results only shrink).
        let (empty_region, _) = entry_with_result(&[]);
        assert!(empty_region.survives_route_insert(&near));
    }

    #[test]
    fn missing_footprint_is_conservative_for_transition_inserts() {
        let (region, _) = entry_with_result(&[0]);
        let routes = RouteStore::default();
        assert!(!region.survives_transition_insert(&routes, &p(1e6, 1e6), &p(1e6, 1e6)));
    }

    #[test]
    fn degenerate_entries_survive_everything() {
        let degenerate = EntryRegion::conservative(&RknntQuery::exists(vec![], 3));
        let routes = RouteStore::default();
        assert!(degenerate.survives_transition_insert(&routes, &p(0.0, 0.0), &p(1.0, 1.0)));
        let k0 = EntryRegion::conservative(&RknntQuery::exists(vec![p(0.0, 0.0)], 0));
        assert!(k0.survives_transition_insert(&routes, &p(0.0, 0.0), &p(1.0, 1.0)));
    }
}
