//! The [`QueryService`]: owns the stores, executes batches across a worker
//! pool and fronts them with the LRU result cache.

use crate::batch::{form_groups, run_group, BatchStats, Group, PreparedEngine};
use crate::cache::{CacheKey, CacheStats, ResultCache};
use crate::metrics::{ServiceMetrics, UpdateCounterView};
use crate::monitor::{SubscriptionDelta, SubscriptionId, SubscriptionRegistry, UpdateEffect};
use crate::policy::EnginePolicy;
use crate::region::EntryRegion;
use rknnt_core::{FilterFootprint, RknntQuery, RknntResult};
use rknnt_geo::{Point, Rect};
use rknnt_index::{RouteId, RouteStore, TransitionId, TransitionStore};
use rknnt_obs::{EventKind, FlightRecorder, MetricsSnapshot, Span, TraceCursor};
use rknnt_storage::{Storage, StorageConfig, StorageError, StorageStats};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Work budget per cached entry for the route-removal survival scan; when
/// the shared budget (`per-entry × entries`) is exhausted mid-call the
/// removal falls back to a full cache drop.
pub(crate) const ROUTE_REMOVAL_BUDGET_PER_ENTRY: usize = 4_096;

/// Tuning knobs for a [`QueryService`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Upper bound on worker threads per batch (at least 1 is always used;
    /// a batch never uses more workers than it has groups).
    pub workers: usize,
    /// Engine-selection policy.
    pub policy: EnginePolicy,
    /// Result-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Seed for the cache's hash function (see [`crate::cache`]).
    pub cache_seed: u64,
    /// Spatial grouping cell size in the coordinate unit of the stores
    /// (metres for the synthetic cities).
    pub group_cell: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
            policy: EnginePolicy::Auto,
            cache_capacity: 4_096,
            cache_seed: 0x5eed,
            group_cell: 2_500.0,
        }
    }
}

impl ServiceConfig {
    /// Fixes the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Fixes the engine policy.
    pub fn with_policy(mut self, policy: EnginePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Fixes the cache capacity (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }
}

/// One incremental store mutation for [`QueryService::apply_updates`] —
/// the paper's dynamic workload, where "old transitions expire and new
/// transitions arrive" and bus lines occasionally change.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreUpdate {
    /// A new passenger transition arrives.
    InsertTransition {
        /// Origin endpoint.
        origin: Point,
        /// Destination endpoint.
        destination: Point,
    },
    /// An existing transition expires (e.g. the request was served).
    ExpireTransition(TransitionId),
    /// A new route (bus line) is added.
    InsertRoute(Vec<Point>),
    /// An existing route is withdrawn.
    RemoveRoute(RouteId),
}

/// Counters reported by one [`QueryService::apply_updates`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateStats {
    /// Updates applied to the stores.
    pub applied: usize,
    /// Updates rejected at the store boundary (non-finite coordinates,
    /// too-short routes, unknown or already-removed ids).
    pub rejected: usize,
    /// Ids assigned to the inserted transitions, in update order.
    pub inserted_transitions: Vec<TransitionId>,
    /// Ids assigned to the inserted routes, in update order.
    pub inserted_routes: Vec<RouteId>,
    /// Cached results evicted because an update could have changed them
    /// (region-scoped evictions plus entries lost to full drops).
    pub evicted_entries: usize,
    /// Cached results still live when the call returned.
    pub retained_entries: usize,
    /// Route removals that forced a full cache drop (the targeted scan's
    /// work budget ran out before every entry was classified).
    pub full_drops: usize,
    /// Route removals handled by targeted eviction: every cached entry was
    /// classified within budget and only the uncertifiable ones dropped.
    pub targeted_route_removals: usize,
    /// (update, subscription) classifications that skipped a subscription
    /// with an exact constant-time test (degenerate query, or an expired
    /// transition outside the result).
    pub subs_unaffected: usize,
    /// (update, subscription) classifications that kept the subscription
    /// without re-execution: a `survives_*` certificate passed, or a member
    /// expiry was applied in place (emitting its delta).
    pub subs_stable: usize,
    /// (update, subscription) classifications that marked the subscription
    /// dirty. Each subscription is marked at most once per call — further
    /// updates skip it — so this equals [`UpdateStats::subs_reexecuted`].
    pub subs_dirty: usize,
    /// Subscriptions re-executed through the batch path at the end of the
    /// call.
    pub subs_reexecuted: usize,
    /// Per-subscription result deltas, in emission order (replaying them
    /// over the pre-call results reproduces the post-call results). Includes
    /// any deltas buffered by wholesale store swaps since the last call.
    pub deltas: Vec<SubscriptionDelta>,
    /// WAL frames appended for this call's updates (0 when no storage is
    /// attached). With storage, every submitted update — including ones the
    /// stores later reject — is logged *before* it applies, so this equals
    /// the submitted update count: replay reproduces rejections
    /// deterministically, exactly like the `applied`/`rejected` counters
    /// above.
    pub wal_appends: usize,
    /// Bytes those WAL frames occupied on disk, headers included (0 when no
    /// storage is attached).
    pub wal_bytes: u64,
}

/// A concurrent batch RkNNT query service over one pair of stores.
///
/// The service owns the [`RouteStore`] and [`TransitionStore`] — queries
/// execute against a consistent snapshot because store mutation requires
/// `&mut self` ([`QueryService::update_stores`] /
/// [`QueryService::apply_updates`]), which the borrow checker serialises
/// against every in-flight `&self` batch. Wholesale updates bump the
/// generation counter and drop the whole result cache; incremental updates
/// go through [`QueryService::apply_updates`], which mutates the stores in
/// place and evicts only the cached results the update could affect (see
/// [`crate::region`]).
pub struct QueryService {
    routes: RouteStore,
    transitions: TransitionStore,
    config: ServiceConfig,
    cache: Mutex<ResultCache>,
    generation: AtomicU64,
    monitor: SubscriptionRegistry,
    storage: Option<Storage>,
    metrics: ServiceMetrics,
}

impl QueryService {
    /// Creates a service over the given stores.
    pub fn new(routes: RouteStore, transitions: TransitionStore, config: ServiceConfig) -> Self {
        let metrics = ServiceMetrics::new();
        let cache = Mutex::new(ResultCache::with_counters(
            config.cache_capacity,
            config.cache_seed,
            metrics.cache.clone(),
        ));
        QueryService {
            routes,
            transitions,
            config,
            cache,
            generation: AtomicU64::new(0),
            monitor: SubscriptionRegistry::default(),
            storage: None,
            metrics,
        }
    }

    /// Opens a durable service from a storage directory: loads the latest
    /// valid snapshot, replays the WAL tail through the normal update path
    /// (so cache state and future subscriptions come up consistent for
    /// free) and attaches the directory for further logging. An empty or
    /// brand-new directory yields an empty service.
    ///
    /// Recovery tolerates a torn final WAL frame (a crash mid-append drops
    /// exactly the un-committed record, reported via
    /// [`StorageStats::torn_tail`]); every other form of damage — bad
    /// magic, checksum mismatches, undecodable records, truncation before
    /// the final frame — is a typed [`StorageError`].
    pub fn open(
        dir: &Path,
        config: ServiceConfig,
        storage_config: StorageConfig,
    ) -> Result<(Self, StorageStats), StorageError> {
        if let Some(layout) = rknnt_storage::detect_shard_layout(dir) {
            return Err(StorageError::ShardedLayout {
                dir: dir.to_path_buf(),
                shards: layout.shard_count(),
            });
        }
        let (mut storage, recovery) = Storage::open(dir, storage_config)?;
        let (routes, transitions) = recovery
            .stores
            .unwrap_or_else(|| (RouteStore::default(), TransitionStore::default()));
        let mut service = QueryService::new(routes, transitions, config);
        storage.set_instruments(service.metrics.storage_instruments());
        let mut updates = Vec::with_capacity(recovery.tail.len());
        for record in &recovery.tail {
            updates.push(StoreUpdate::from_wal_record(record).map_err(|e| {
                StorageError::Corrupt {
                    path: dir.to_path_buf(),
                    offset: None,
                    detail: format!("undecodable WAL record: {e}"),
                }
            })?);
        }
        if !updates.is_empty() {
            // Replay mutates the stores exactly like the original calls did
            // (ids are dense slot indexes, and the snapshot preserved dead
            // slots) — but must not re-append to the WAL.
            service.apply_updates_unlogged(updates);
        }
        let stats = storage.stats();
        service.storage = Some(storage);
        Ok((service, stats))
    }

    /// Attaches a storage directory to an in-memory service and writes the
    /// initial checkpoint, making the current state durable. The directory
    /// must not already hold snapshot or WAL data
    /// ([`StorageError::DirectoryNotEmpty`]) — recover existing state with
    /// [`QueryService::open`] instead. A directory holding a *sharded*
    /// layout (`router/`, `shard-NNN/` subdirectories) is recognised and
    /// refused with the typed [`StorageError::ShardedLayout`]: its state
    /// belongs to a whole fleet and must be recovered with
    /// [`crate::ShardedService::open`], not shadowed by a single service
    /// checkpointing into the root.
    pub fn attach_storage(
        &mut self,
        dir: &Path,
        storage_config: StorageConfig,
    ) -> Result<StorageStats, StorageError> {
        if let Some(layout) = rknnt_storage::detect_shard_layout(dir) {
            return Err(StorageError::ShardedLayout {
                dir: dir.to_path_buf(),
                shards: layout.shard_count(),
            });
        }
        let (mut storage, recovery) = Storage::open(dir, storage_config)?;
        if recovery.found_existing {
            return Err(StorageError::DirectoryNotEmpty {
                dir: dir.to_path_buf(),
            });
        }
        storage.set_instruments(self.metrics.storage_instruments());
        // Checkpoint *before* attaching: if the initial snapshot cannot be
        // written there is no durable baseline, and leaving the directory
        // attached would let the WAL grow against state recovery could
        // never reconstruct (replay onto empty stores).
        let stats = storage.checkpoint(&self.routes, &self.transitions)?;
        self.storage = Some(storage);
        Ok(stats)
    }

    /// Writes a new snapshot covering every logged update and truncates the
    /// now-obsolete WAL segments. Requires attached storage
    /// ([`StorageError::NotAttached`] otherwise).
    pub fn checkpoint(&mut self) -> Result<StorageStats, StorageError> {
        let storage = self.storage.as_mut().ok_or(StorageError::NotAttached)?;
        storage.checkpoint(&self.routes, &self.transitions)
    }

    /// Whether a storage directory is attached.
    pub fn has_storage(&self) -> bool {
        self.storage.is_some()
    }

    /// Storage counters, when storage is attached.
    pub fn storage_stats(&self) -> Option<StorageStats> {
        self.storage.as_ref().map(Storage::stats)
    }

    /// Checkpoints after a wholesale store mutation when storage is
    /// attached. Wholesale swaps have no per-update WAL representation, so
    /// the snapshot *is* their durability; failing to write it would
    /// silently decouple disk from memory, hence the panic (use
    /// [`QueryService::checkpoint`] directly for a fallible path).
    fn checkpoint_if_attached(&mut self) {
        if self.storage.is_some() {
            self.checkpoint()
                .expect("checkpoint after wholesale store mutation failed");
        }
    }

    /// The configuration the service was built with.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Read access to the route store.
    pub fn routes(&self) -> &RouteStore {
        &self.routes
    }

    /// Read access to the transition store.
    pub fn transitions(&self) -> &TransitionStore {
        &self.transitions
    }

    /// The store generation: starts at 0 and increments on every
    /// [`QueryService::update_stores`] / [`QueryService::invalidate_all`].
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Result-cache counter snapshot.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock").stats()
    }

    /// Number of results currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// The service's metric catalog: registry access, per-stage latency
    /// histograms, the flight recorder and the enable switch.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// A point-in-time copy of every registered metric; diff two snapshots
    /// to isolate an interval.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The current metrics in the text exposition format.
    pub fn metrics_text(&self) -> String {
        self.metrics.render_text()
    }

    /// Shared handle to the flight recorder of recent pipeline events (for
    /// [`rknnt_obs::DumpOnPanic`] and on-demand dumps).
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        self.metrics.recorder().clone()
    }

    /// Turns span timing, histogram recording and flight-recorder events on
    /// or off. Counters stay live, so the exact per-call
    /// [`BatchStats`]/[`UpdateStats`] counts keep working; the wall-clock
    /// `timings` fields read zero while disabled.
    pub fn set_metrics_enabled(&self, on: bool) {
        self.metrics.set_enabled(on);
    }

    /// Drops every cached result and bumps the generation. Safe to call
    /// while other threads are executing batches: they may re-insert
    /// results computed against the *current* stores (stores cannot have
    /// changed — that requires `&mut self`), so nothing stale can appear.
    pub fn invalidate_all(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        self.cache.lock().expect("cache lock").invalidate_all();
    }

    /// Mutates the stores through `f`, then invalidates the cache and bumps
    /// the generation so subsequent queries see the new data. Every live
    /// subscription is re-executed against the new stores (a wholesale
    /// mutation certifies nothing); their deltas are buffered and delivered
    /// by the next [`QueryService::apply_updates`] call or
    /// [`QueryService::take_subscription_deltas`].
    ///
    /// Taking `&mut self` is the concurrency-correctness lever: in-flight
    /// batches hold `&self`, so an update waits for them and no batch ever
    /// observes a half-applied mutation.
    pub fn update_stores<F>(&mut self, f: F)
    where
        F: FnOnce(&mut RouteStore, &mut TransitionStore),
    {
        f(&mut self.routes, &mut self.transitions);
        self.invalidate_all();
        self.refresh_all_subscriptions();
        self.checkpoint_if_attached();
    }

    /// Replaces both stores wholesale (e.g. a rebuilt index snapshot). Like
    /// [`QueryService::update_stores`], re-executes every subscription and
    /// buffers their deltas.
    pub fn replace_stores(&mut self, routes: RouteStore, transitions: TransitionStore) {
        self.routes = routes;
        self.transitions = transitions;
        self.invalidate_all();
        self.refresh_all_subscriptions();
        self.checkpoint_if_attached();
    }

    /// Registers a standing query. The result is computed immediately (and
    /// readable via [`QueryService::subscription_result`]); from then on
    /// every [`QueryService::apply_updates`] call keeps it current and
    /// reports changes as [`SubscriptionDelta`]s.
    pub fn subscribe(&mut self, query: RknntQuery) -> SubscriptionId {
        let (result, footprint) = self
            .execute_uncached(std::slice::from_ref(&query))
            .pop()
            .expect("one query in, one result out");
        let region = EntryRegion::record(&query, &result, footprint, &self.transitions);
        self.monitor.insert(query, result.transitions, region)
    }

    /// Drops a subscription. Returns `false` for an unknown or already
    /// dropped id. Buffered deltas for the subscription are kept until
    /// drained.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        self.monitor.remove(id)
    }

    /// Number of live subscriptions.
    pub fn subscriptions(&self) -> usize {
        self.monitor.len()
    }

    /// Ids of all live subscriptions, ascending.
    pub fn subscription_ids(&self) -> Vec<SubscriptionId> {
        self.monitor.ids()
    }

    /// The standing query behind a subscription.
    pub fn subscription_query(&self, id: SubscriptionId) -> Option<&RknntQuery> {
        self.monitor.get(id).map(|sub| &sub.query)
    }

    /// The subscription's current result: the qualifying transition ids,
    /// sorted ascending — always byte-identical to executing the standing
    /// query against the current stores.
    pub fn subscription_result(&self, id: SubscriptionId) -> Option<&[TransitionId]> {
        self.monitor.get(id).map(|sub| sub.result.as_slice())
    }

    /// Drains subscription deltas buffered outside
    /// [`QueryService::apply_updates`] (wholesale store swaps with live
    /// subscriptions). `apply_updates` drains this buffer into its own
    /// [`UpdateStats::deltas`] automatically.
    pub fn take_subscription_deltas(&mut self) -> Vec<SubscriptionDelta> {
        self.monitor.take_pending()
    }

    /// Marks every subscription dirty and re-executes them against the
    /// current stores, buffering any deltas.
    fn refresh_all_subscriptions(&mut self) {
        if self.monitor.len() == 0 {
            return;
        }
        self.monitor.mark_all_dirty();
        let mut deltas = Vec::new();
        self.reexecute_dirty_subscriptions(&mut deltas);
        self.monitor.push_pending(deltas);
    }

    /// Re-executes every dirty subscription through the grouped batch
    /// machinery (shared filter constructions, worker pool) against the
    /// current stores, installing results and emitting deltas.
    fn reexecute_dirty_subscriptions(&mut self, deltas: &mut Vec<SubscriptionDelta>) {
        let dirty = self.monitor.dirty_ids();
        if dirty.is_empty() {
            return;
        }
        let queries: Vec<RknntQuery> = dirty
            .iter()
            .map(|id| self.monitor.query_of(*id).clone())
            .collect();
        let outputs = self.execute_uncached(&queries);
        for (id, (query, (result, footprint))) in dirty.into_iter().zip(queries.iter().zip(outputs))
        {
            let region = EntryRegion::record(query, &result, footprint, &self.transitions);
            self.monitor
                .finish_reexecution(id, result.transitions, region, &self.metrics, deltas);
        }
    }

    /// Applies incremental store updates in order, evicting **only** the
    /// cached results each update could change — the region-scoped
    /// alternative to the wholesale [`QueryService::update_stores`] path.
    ///
    /// Every cached entry carries the [`EntryRegion`] recorded when it was
    /// computed: the filter footprint its filter step touched (query-route
    /// MBR expanded by the filter radius actually used, plus the pruning
    /// witnesses) and the MBR of its result endpoints. An update evicts an
    /// entry only when its dirty region reaches the entry's recorded region
    /// (see [`crate::region`] for the per-update rules and their soundness
    /// arguments); route removals fall back to a full cache drop, the one
    /// update kind whose influence no bounded record can limit.
    ///
    /// Unlike `update_stores`, this path does **not** bump the generation:
    /// `&mut self` already serialises it against in-flight batches, and
    /// retained entries remain byte-identical to what a freshly built
    /// service over the post-update stores would answer — asserted by the
    /// churn determinism suite in `tests/service_churn.rs`.
    ///
    /// Live subscriptions are classified against every applied update —
    /// *unaffected* (skipped), *certified stable* (kept, region updated) or
    /// *dirty* — and the dirty ones are re-executed together through the
    /// grouped batch path at the end of the call; the returned
    /// [`UpdateStats::deltas`] describe every subscription result change
    /// (see [`crate::monitor`]).
    ///
    /// With storage attached ([`QueryService::open`] /
    /// [`QueryService::attach_storage`]) the batch is appended to the
    /// write-ahead log — one frame per update, one fsync per call — *before*
    /// anything applies, so a crash at any point replays to exactly a batch
    /// boundary. A WAL I/O failure panics here (durability must not be
    /// silently dropped); use [`QueryService::try_apply_updates`] to handle
    /// it instead.
    ///
    /// # Panics
    /// Panics when storage is attached and the WAL append fails.
    pub fn apply_updates(&mut self, updates: Vec<StoreUpdate>) -> UpdateStats {
        self.try_apply_updates(updates)
            .expect("WAL append failed (use try_apply_updates to handle storage errors)")
    }

    /// Fallible form of [`QueryService::apply_updates`]: returns the WAL
    /// append error instead of panicking. When it errors, the stores are
    /// untouched and the WAL rolls the failed batch's bytes back (a retry
    /// with the same or different updates is safe); if even the rollback
    /// fails, the log poisons itself and every further logged update
    /// errors rather than risk corrupting the stream.
    pub fn try_apply_updates(
        &mut self,
        updates: Vec<StoreUpdate>,
    ) -> Result<UpdateStats, StorageError> {
        self.try_apply_updates_traced(updates, None)
    }

    /// [`QueryService::apply_updates`] with request tracing: when `trace` is
    /// present the WAL append (the update path's dominant latency source)
    /// gets a `wal_append` span carrying the frame count and payload bytes.
    ///
    /// # Panics
    /// Panics when storage is attached and the WAL append fails.
    pub fn apply_updates_traced(
        &mut self,
        updates: Vec<StoreUpdate>,
        trace: Option<&TraceCursor>,
    ) -> UpdateStats {
        self.try_apply_updates_traced(updates, trace)
            .expect("WAL append failed (use try_apply_updates_traced to handle storage errors)")
    }

    /// Fallible form of [`QueryService::apply_updates_traced`] — the same
    /// error contract as [`QueryService::try_apply_updates`].
    pub fn try_apply_updates_traced(
        &mut self,
        updates: Vec<StoreUpdate>,
        trace: Option<&TraceCursor>,
    ) -> Result<UpdateStats, StorageError> {
        // Read the counter baseline *before* the WAL append so the frames
        // and bytes the storage instruments record land in this call's diff.
        let base = self.metrics.update_view();
        if let Some(storage) = &mut self.storage {
            let (records, bytes) = crate::durable::wal_records(&updates);
            let span = trace.map(|t| t.begin("wal_append"));
            storage.append(&records)?;
            if let (Some(t), Some(span)) = (trace, span) {
                t.end_with(span, &[("frames", records.len() as u64), ("bytes", bytes)]);
            }
        }
        Ok(self.apply_updates_from(updates, base))
    }

    /// The update path proper, shared by the logged entry points above and
    /// by WAL replay during [`QueryService::open`] (which must not
    /// re-append what it replays).
    pub(crate) fn apply_updates_unlogged(&mut self, updates: Vec<StoreUpdate>) -> UpdateStats {
        let base = self.metrics.update_view();
        self.apply_updates_from(updates, base)
    }

    /// Applies the updates and builds the [`UpdateStats`] by diffing the
    /// registry counters against `base` — updates hold `&mut self`, so the
    /// window is exclusive and the diff exact.
    fn apply_updates_from(
        &mut self,
        updates: Vec<StoreUpdate>,
        base: UpdateCounterView,
    ) -> UpdateStats {
        let mut stats = UpdateStats {
            // Deliver deltas buffered by wholesale swaps first so replaying
            // `deltas` in order stays correct across both update paths.
            deltas: self.monitor.take_pending(),
            ..UpdateStats::default()
        };
        for update in updates {
            match update {
                StoreUpdate::InsertTransition {
                    origin,
                    destination,
                } => {
                    let Some(id) = self.transitions.insert(origin, destination) else {
                        self.metrics.update_rejected.inc();
                        continue;
                    };
                    self.metrics.update_applied.inc();
                    stats.inserted_transitions.push(id);
                    let routes = &self.routes;
                    self.cache
                        .get_mut()
                        .expect("cache lock")
                        .evict_where(|_, _, region| {
                            !region.survives_transition_insert(routes, &origin, &destination)
                        });
                    self.monitor.classify_update(
                        &UpdateEffect::TransitionInsert {
                            origin: &origin,
                            destination: &destination,
                        },
                        &self.routes,
                        &self.transitions,
                        &self.metrics,
                        &mut stats.deltas,
                    );
                }
                StoreUpdate::ExpireTransition(id) => {
                    if !self.transitions.remove(id) {
                        self.metrics.update_rejected.inc();
                        continue;
                    }
                    self.metrics.update_applied.inc();
                    self.cache
                        .get_mut()
                        .expect("cache lock")
                        .evict_where(|_, value, region| {
                            !region.survives_transition_remove(&value.transitions, id)
                        });
                    self.monitor.classify_update(
                        &UpdateEffect::TransitionRemove { id },
                        &self.routes,
                        &self.transitions,
                        &self.metrics,
                        &mut stats.deltas,
                    );
                }
                StoreUpdate::InsertRoute(points) => {
                    let dirty = Rect::from_points(&points).unwrap_or_else(Rect::empty);
                    let Some(id) = self.routes.insert_route(points) else {
                        self.metrics.update_rejected.inc();
                        continue;
                    };
                    self.metrics.update_applied.inc();
                    stats.inserted_routes.push(id);
                    self.cache
                        .get_mut()
                        .expect("cache lock")
                        .evict_where(|_, _, region| !region.survives_route_insert(&dirty));
                    self.monitor.classify_update(
                        &UpdateEffect::RouteInsert { mbr: &dirty },
                        &self.routes,
                        &self.transitions,
                        &self.metrics,
                        &mut stats.deltas,
                    );
                }
                StoreUpdate::RemoveRoute(id) => {
                    let removed_points: Vec<Point> = self.routes.route_points(id).to_vec();
                    if !self.routes.remove_route(id) {
                        self.metrics.update_rejected.inc();
                        continue;
                    }
                    self.metrics.update_applied.inc();
                    self.evict_for_route_removal(id, &removed_points);
                    self.monitor.classify_update(
                        &UpdateEffect::RouteRemove {
                            id,
                            points: &removed_points,
                        },
                        &self.routes,
                        &self.transitions,
                        &self.metrics,
                        &mut stats.deltas,
                    );
                }
            }
        }
        self.reexecute_dirty_subscriptions(&mut stats.deltas);
        stats.retained_entries = self.cache.get_mut().expect("cache lock").len();
        let view = self.metrics.update_view();
        stats.applied = (view.applied - base.applied) as usize;
        stats.rejected = (view.rejected - base.rejected) as usize;
        stats.evicted_entries = (view.evicted_entries - base.evicted_entries) as usize;
        stats.full_drops = (view.full_drops - base.full_drops) as usize;
        stats.targeted_route_removals =
            (view.targeted_route_removals - base.targeted_route_removals) as usize;
        stats.subs_unaffected = (view.subs_unaffected - base.subs_unaffected) as usize;
        stats.subs_stable = (view.subs_stable - base.subs_stable) as usize;
        stats.subs_dirty = (view.subs_dirty - base.subs_dirty) as usize;
        stats.subs_reexecuted = (view.subs_reexecuted - base.subs_reexecuted) as usize;
        stats.wal_appends = (view.wal_appends - base.wal_appends) as usize;
        stats.wal_bytes = view.wal_bytes - base.wal_bytes;
        stats
    }

    /// Cache maintenance for a removed route: plan a targeted eviction
    /// (every entry re-certified with the removed route excluded, under a
    /// shared work budget) and fall back to the full drop only when the
    /// budget runs out before every entry is classified.
    fn evict_for_route_removal(&mut self, id: RouteId, removed_points: &[Point]) {
        let cache = self.cache.get_mut().expect("cache lock");
        if cache.is_empty() {
            self.metrics.targeted_route_removals.inc();
            return;
        }
        let mut budget = ROUTE_REMOVAL_BUDGET_PER_ENTRY.saturating_mul(cache.len());
        let mut victims: Vec<CacheKey> = Vec::new();
        let mut exhausted = false;
        for (key, value, region) in cache.entries() {
            if budget == 0 {
                exhausted = true;
                break;
            }
            if !region.survives_route_remove(
                &self.routes,
                &self.transitions,
                &value.transitions,
                id,
                removed_points,
                &mut budget,
            ) {
                victims.push(key.clone());
            }
        }
        if exhausted {
            self.metrics.full_drops.inc();
            self.metrics.record_event(EventKind::CacheEvicted {
                entries: u32::try_from(cache.len()).unwrap_or(u32::MAX),
                full_drop: true,
            });
            cache.invalidate_all();
        } else {
            self.metrics.targeted_route_removals.inc();
            self.metrics.record_event(EventKind::CacheEvicted {
                entries: u32::try_from(victims.len()).unwrap_or(u32::MAX),
                full_drop: false,
            });
            let victims: std::collections::HashSet<&CacheKey> = victims.iter().collect();
            cache.evict_where(|key, _, _| victims.contains(key));
        }
    }

    /// Answers one query (through the cache; see
    /// [`QueryService::execute_batch`] for the batched path).
    pub fn execute(&self, query: &RknntQuery) -> RknntResult {
        let (mut results, _) = self.execute_batch(std::slice::from_ref(query));
        results.pop().expect("one query in, one result out")
    }

    /// Executes a batch of queries and returns one result per query, in
    /// input order, plus the batch counters.
    ///
    /// Pipeline: cache lookup → policy + spatial grouping of the misses →
    /// group execution across up to `config.workers` scoped threads (groups
    /// are round-robin sharded; workers build their own engines, share
    /// filter constructions within a group and coalesce exact duplicates) →
    /// deterministic merge + cache insertion.
    ///
    /// The returned transition sets are byte-identical to executing every
    /// query sequentially with the policy-chosen engine's
    /// [`rknnt_core::RknnTEngine::execute`]: grouping and sharding only
    /// decide *where* and *how often* work runs, never *what* it computes.
    pub fn execute_batch(&self, queries: &[RknntQuery]) -> (Vec<RknntResult>, BatchStats) {
        self.execute_batch_traced(queries, None)
    }

    /// [`QueryService::execute_batch`] with request tracing: when `trace` is
    /// present, a `batch` span is opened under the cursor's parent and each
    /// pipeline phase lands as a closed child span (`cache_lookup`,
    /// `grouping`, `execution`, `finalize`) carrying the batch counters as
    /// attributes; workers and groups add their own spans below that.
    ///
    /// Tracing never changes what is computed: results are byte-identical
    /// to the untraced call (asserted by the `trace_overhead` experiment),
    /// and the per-phase span durations are the *same* measurements the
    /// returned [`BatchStats::timings`] report.
    pub fn execute_batch_traced(
        &self,
        queries: &[RknntQuery],
        trace: Option<&TraceCursor>,
    ) -> (Vec<RknntResult>, BatchStats) {
        let mut stats = BatchStats {
            queries: queries.len(),
            ..BatchStats::default()
        };
        let mut slots: Vec<Option<RknntResult>> = vec![None; queries.len()];
        if queries.is_empty() {
            return (Vec::new(), stats);
        }
        let batch_span = trace.map(|t| t.begin("batch"));
        let bt = trace.zip(batch_span).map(|(t, s)| t.at(s));
        let generation_at_start = self.generation();
        self.metrics.batches.inc();
        self.metrics.queries.add(queries.len() as u64);
        // Counter baseline this batch's stats are diffed from. Concurrent
        // batches each see the union of what happened during their own
        // window (the registry totals stay exact); single-batch callers see
        // exactly their own counts.
        let base = self.metrics.batch_view();

        // Phase 1: cache lookup.
        let span = Span::enter(&self.metrics.stage_lookup);
        let caching = self.config.cache_capacity > 0;
        let mut keys: Vec<Option<CacheKey>> = Vec::with_capacity(queries.len());
        let mut miss_indexes: Vec<usize> = Vec::new();
        if caching {
            let mut cache = self.cache.lock().expect("cache lock");
            for (i, query) in queries.iter().enumerate() {
                let key = CacheKey::of(query);
                match cache.get(&key) {
                    Some(result) => {
                        slots[i] = Some(result);
                        keys.push(Some(key));
                    }
                    None => {
                        miss_indexes.push(i);
                        keys.push(Some(key));
                    }
                }
            }
        } else {
            keys.resize_with(queries.len(), || None);
            miss_indexes.extend(0..queries.len());
        }
        stats.timings.lookup = span.finish();
        stats.cache_hits = (self.metrics.cache.hits.get() - base.cache_hits) as usize;
        if let Some(bt) = &bt {
            bt.record(
                "cache_lookup",
                stats.timings.lookup.as_nanos() as u64,
                &[
                    ("queries", queries.len() as u64),
                    ("cache_hits", stats.cache_hits as u64),
                ],
            );
        }
        self.metrics.record_event(EventKind::BatchAdmitted {
            queries: u32::try_from(queries.len()).unwrap_or(u32::MAX),
            cache_hits: u32::try_from(stats.cache_hits).unwrap_or(u32::MAX),
        });

        // Phase 2: policy + spatial grouping of the misses.
        let span = Span::enter(&self.metrics.stage_grouping);
        let groups = form_groups(
            queries,
            &miss_indexes,
            self.config.policy,
            self.config.group_cell,
        );
        stats.groups = groups.len();
        self.metrics.groups.add(groups.len() as u64);
        stats.timings.grouping = span.finish();
        if let Some(bt) = &bt {
            bt.record(
                "grouping",
                stats.timings.grouping.as_nanos() as u64,
                &[("groups", groups.len() as u64)],
            );
        }

        // Phase 3: execution over the worker pool.
        let span = Span::enter(&self.metrics.stage_execution);
        let exec_span = bt.as_ref().map(|t| t.begin("execution"));
        let et = bt.as_ref().zip(exec_span).map(|(t, s)| t.at(s));
        let (mut computed, workers_used) = self.run_groups(&groups, et.as_ref());
        stats.workers_used = workers_used;
        stats.timings.execution = span.finish();
        if let (Some(bt), Some(exec_span)) = (&bt, exec_span) {
            bt.end_with(exec_span, &[("workers", workers_used as u64)]);
        }

        // Phase 4: merge into input order and feed the cache.
        let span = Span::enter(&self.metrics.stage_finalize);
        if caching {
            self.fill_footprint_fallbacks(queries, &mut computed);
            let mut cache = self.cache.lock().expect("cache lock");
            // Only insert when no invalidation raced the batch: the stores
            // cannot have changed (that needs `&mut self`), but whoever
            // called invalidate_all expects a cold cache and re-populating
            // it behind their back would be surprising.
            let fresh = self.generation() == generation_at_start;
            for (index, result, footprint) in computed {
                if fresh {
                    if let Some(key) = keys[index].take() {
                        // Record the entry's invalidation region: the filter
                        // footprint the engine reported plus the MBR of the
                        // result's endpoints, both against the current
                        // stores (which cannot have changed under `&self`).
                        let region = EntryRegion::record(
                            &queries[index],
                            &result,
                            footprint,
                            &self.transitions,
                        );
                        cache.insert(key, result.clone(), region);
                    }
                }
                slots[index] = Some(result);
            }
        } else {
            for (index, result, _) in computed {
                slots[index] = Some(result);
            }
        }
        let results: Vec<RknntResult> = slots
            .into_iter()
            .map(|slot| slot.expect("every query produced a result"))
            .collect();
        stats.timings.finalize = span.finish();
        let view = self.metrics.batch_view();
        stats.filter_constructions =
            (view.filter_constructions - base.filter_constructions) as usize;
        stats.filters_saved = (view.filters_saved - base.filters_saved) as usize;
        stats.duplicates_coalesced =
            (view.duplicates_coalesced - base.duplicates_coalesced) as usize;
        if let Some(bt) = &bt {
            bt.record(
                "finalize",
                stats.timings.finalize.as_nanos() as u64,
                &[("filter_constructions", stats.filter_constructions as u64)],
            );
        }
        if let (Some(t), Some(batch_span)) = (trace, batch_span) {
            t.end_with(
                batch_span,
                &[
                    ("queries", queries.len() as u64),
                    ("cache_hits", stats.cache_hits as u64),
                    ("groups", stats.groups as u64),
                ],
            );
        }
        (results, stats)
    }

    /// Executes pre-formed groups over the worker pool, returning the
    /// outputs and the worker count used. Work counters go straight to the
    /// registry cells (they are atomic, so workers increment them directly).
    fn run_groups(
        &self,
        groups: &[Group<'_>],
        trace: Option<&TraceCursor>,
    ) -> (Vec<crate::batch::GroupOutput>, usize) {
        let workers = self.config.workers.max(1).min(groups.len().max(1));
        let workers_used = if groups.is_empty() { 0 } else { workers };
        let mut computed: Vec<crate::batch::GroupOutput> = Vec::new();
        if workers <= 1 {
            // In-line fast path: no thread spawn for single-worker batches.
            // The scratch is this worker's own (see `rknnt_core::scratch` for
            // the ownership rules) and is reused across every query of the
            // batch, so per-candidate work stops allocating once warmed.
            let worker_span = match (trace, groups.is_empty()) {
                (Some(t), false) => Some((t.clone(), t.begin("worker"))),
                _ => None,
            };
            let wt = worker_span.as_ref().map(|(t, s)| t.at(*s));
            let mut engines = WorkerEngines::default();
            let mut scratch = rknnt_core::QueryScratch::new();
            for group in groups {
                let engine = engines.for_kind(group, &self.routes, &self.transitions);
                run_group(
                    engine,
                    group,
                    &mut scratch,
                    &mut computed,
                    &self.metrics,
                    wt.as_ref(),
                );
            }
            if let Some((t, span)) = worker_span {
                t.end_with(span, &[("worker", 0), ("groups", groups.len() as u64)]);
            }
        } else {
            // Round-robin shard the groups, spawn one scoped worker per
            // shard, and join in shard order (determinism does not depend
            // on it — results carry their batch index — but a stable merge
            // order is nice to have).
            let shards: Vec<Vec<&Group>> = (0..workers)
                .map(|w| groups.iter().skip(w).step_by(workers).collect())
                .collect();
            let outputs = std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .into_iter()
                    .enumerate()
                    .map(|(w, shard)| {
                        let (routes, transitions) = (&self.routes, &self.transitions);
                        let metrics = &self.metrics;
                        // Each worker records its own "worker" span; the
                        // trace slab is behind a mutex, so concurrent span
                        // pushes interleave safely (order within the slab is
                        // scheduling-dependent, parenthood is not).
                        let wt: Option<TraceCursor> = trace.cloned();
                        scope.spawn(move || {
                            let shard_groups = shard.len() as u64;
                            let span = wt.as_ref().map(|t| t.begin("worker"));
                            let child = wt.as_ref().zip(span).map(|(t, s)| t.at(s));
                            let mut engines = WorkerEngines::default();
                            // One scratch per worker thread, never shared.
                            let mut scratch = rknnt_core::QueryScratch::new();
                            let mut out = Vec::new();
                            for group in shard {
                                let engine = engines.for_kind(group, routes, transitions);
                                run_group(
                                    engine,
                                    group,
                                    &mut scratch,
                                    &mut out,
                                    metrics,
                                    child.as_ref(),
                                );
                            }
                            if let (Some(t), Some(span)) = (wt.as_ref(), span) {
                                t.end_with(span, &[("worker", w as u64), ("groups", shard_groups)]);
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("service worker panicked"))
                    .collect::<Vec<_>>()
            });
            for out in outputs {
                computed.extend(out);
            }
        }
        (computed, workers_used)
    }

    /// Footprint fallback for engines that build no filter set (BruteForce /
    /// DivideConquer): run the filter construction here, once per distinct
    /// `(route, k)`, so their results are region-taggable too instead of
    /// evicting (or dirtying a subscription) on every update. Pure reads
    /// against the stores.
    fn fill_footprint_fallbacks(
        &self,
        queries: &[RknntQuery],
        computed: &mut [crate::batch::GroupOutput],
    ) {
        type FootprintByQuery =
            std::collections::HashMap<(Vec<(u64, u64)>, usize), Arc<FilterFootprint>>;
        let mut fallback: FootprintByQuery = std::collections::HashMap::new();
        for (index, _, footprint) in computed.iter_mut() {
            let query = &queries[*index];
            if footprint.is_none() && !query.is_degenerate() {
                let key = (crate::cache::route_bits(&query.route), query.k);
                let entry = fallback.entry(key).or_insert_with(|| {
                    Arc::new(FilterFootprint::compute(
                        &self.routes,
                        &query.route,
                        query.k,
                    ))
                });
                *footprint = Some(entry.clone());
            }
        }
    }

    /// Executes queries through grouping + the worker pool, bypassing the
    /// result cache in both directions, and returns each result with its
    /// filter footprint (engine-reported or fallback-computed). Used for
    /// subscription (re-)execution: dirty standing queries still share
    /// filter constructions within the batch, but never pollute the LRU.
    fn execute_uncached(
        &self,
        queries: &[RknntQuery],
    ) -> Vec<(RknntResult, Option<Arc<FilterFootprint>>)> {
        let miss_indexes: Vec<usize> = (0..queries.len()).collect();
        let groups = form_groups(
            queries,
            &miss_indexes,
            self.config.policy,
            self.config.group_cell,
        );
        let (mut computed, _) = self.run_groups(&groups, None);
        self.fill_footprint_fallbacks(queries, &mut computed);
        let mut slots: Vec<Option<(RknntResult, Option<Arc<FilterFootprint>>)>> =
            (0..queries.len()).map(|_| None).collect();
        for (index, result, footprint) in computed {
            slots[index] = Some((result, footprint));
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every query produced a result"))
            .collect()
    }
}

/// Per-worker lazily-built engines, one per [`rknnt_core::EngineKind`] the
/// worker's groups actually use (at most four entries, so a linear scan
/// beats any map).
#[derive(Default)]
struct WorkerEngines<'a> {
    built: Vec<(rknnt_core::EngineKind, PreparedEngine<'a>)>,
}

impl<'a> WorkerEngines<'a> {
    fn for_kind(
        &mut self,
        group: &Group<'_>,
        routes: &'a RouteStore,
        transitions: &'a TransitionStore,
    ) -> &PreparedEngine<'a> {
        if let Some(pos) = self.built.iter().position(|(kind, _)| *kind == group.kind) {
            return &self.built[pos].1;
        }
        self.built.push((
            group.kind,
            PreparedEngine::prepare(group.kind, routes, transitions),
        ));
        &self.built.last().expect("just pushed").1
    }
}
