//! Spatial sharding: SFC-partitioned shards behind a footprint-pruned
//! router.
//!
//! [`ShardedService`] splits one city across `N` shards by Z-order cell of
//! each item's representative point (a route's first vertex, a transition's
//! origin — see [`rknnt_geo::CellGrid`]). Every shard owns a plain
//! [`QueryService`] over its slice of the data; the router in front owns a
//! **planner replica** of the full [`RouteStore`] (routes are small and
//! queried globally; transitions are the bulk and are sharded), the global
//! result cache, the subscription registry and the routing directory mapping
//! every global id to `(shard, local id, live)`.
//!
//! The routing insight is that the filter step already produces a
//! *shard-pruning certificate*: the same `filters_rect` test the TR-tree
//! descent uses on interior nodes applies verbatim to a shard's root MBR. A
//! query builds its filter once against the planner; any shard whose
//! TR-tree root the filter covers provably contains no candidate and is
//! never consulted. Because an endpoint survives pruning iff `filters_point`
//! accepts it — node-level tests are certificates for their subtrees, so
//! tree *shape* never changes survival — the union of per-shard candidate
//! sets equals the unsharded candidate set, and after identical per-endpoint
//! verification against the planner the merged, sorted result is
//! **byte-identical** to the unsharded service's. The same argument makes
//! subscription delta streams identical: classification certificates are
//! sound on both sides, and a spuriously dirty subscription re-executes to
//! an unchanged result and emits nothing.
//!
//! Durability is layered: each shard keeps its own WAL + snapshot directory
//! (`shard-NNN/`), and the router keeps its own (`router/`) holding the
//! planner snapshot, the routing directory (in the checkpoint's meta block)
//! and a WAL of every update in *global* form. Updates are logged by the
//! router first, then forwarded to the owning shard (which logs them again
//! locally), so a crash between the two appends is reconciled on
//! [`ShardedService::open`]: a replayed update whose owning shard already
//! shows it applied only re-records the directory mapping.

use crate::batch::{form_groups, BatchStats, Group, GroupOutput};
use crate::cache::{route_bits, CacheKey, CacheStats, ResultCache};
use crate::metrics::{RouterMetrics, ServiceMetrics};
use crate::monitor::{Subscription, SUB_REMOVAL_BUDGET};
use crate::monitor::{SubscriptionDelta, SubscriptionId, SubscriptionRegistry, UpdateEffect};
use crate::region::EntryRegion;
use crate::service::{
    QueryService, ServiceConfig, StoreUpdate, UpdateStats, ROUTE_REMOVAL_BUDGET_PER_ENTRY,
};
use rknnt_core::{
    build_filter_set, count_closer_routes_sq, prune_transitions, CandidateEndpoint, EngineKind,
    FilterFootprint, FilterOutcome, PhaseTimings, QueryStats, RknntQuery, RknntResult, Semantics,
};
use rknnt_data::codec::{CodecError, Decoder, Encoder};
use rknnt_geo::{point_route_distance_sq, CellGrid, Point, Rect};
use rknnt_index::{
    partition_routes, partition_transitions, EndpointKind, IdSpace, NList, RouteId, RouteStore,
    TransitionId, TransitionStore,
};
use rknnt_obs::{EventKind, FlightRecorder, MetricsSnapshot, Span, TraceCursor};
use rknnt_rtree::RTreeConfig;
use rknnt_storage::{
    detect_shard_layout, dir_has_storage_data, parse_shard_subdir, shard_subdir, Storage,
    StorageConfig, StorageError, StorageStats, ROUTER_SUBDIR,
};
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Version byte of the router checkpoint's meta block.
const META_VERSION: u8 = 1;
/// Meta slot tag: no item ever held this global id (skipped at build time).
const SLOT_VACANT: u8 = 0;
/// Meta slot tag: a live item on `(shard, local)`.
const SLOT_LIVE: u8 = 1;
/// Meta slot tag: an item that lived on `(shard, local)` and was removed.
const SLOT_DEAD: u8 = 2;

/// Configuration of a [`ShardedService`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedConfig {
    /// Number of shards the city is split into (at least 1 is always used).
    pub shards: usize,
    /// Z-order grid resolution: the dataset MBR is divided into
    /// `2^bits × 2^bits` cells (clamped to
    /// [`rknnt_geo::MAX_GRID_BITS`]).
    pub grid_bits: u32,
    /// R-tree fan-out for the per-shard stores and the planner replica.
    pub rtree: RTreeConfig,
    /// Configuration of the router's batch pipeline (workers, policy,
    /// cache) and of each shard's inner service.
    pub base: ServiceConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            shards: 4,
            grid_bits: 6,
            rtree: RTreeConfig::default(),
            base: ServiceConfig::default(),
        }
    }
}

impl ShardedConfig {
    /// Fixes the shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Fixes the Z-order grid resolution.
    pub fn with_grid_bits(mut self, bits: u32) -> Self {
        self.grid_bits = bits;
        self
    }

    /// Fixes the base service configuration.
    pub fn with_base(mut self, base: ServiceConfig) -> Self {
        self.base = base;
        self
    }
}

/// One entry of the routing directory: where a global id lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// The global id was never assigned (the item was rejected at build
    /// time, consuming no id in the unsharded numbering — kept so directory
    /// indexes line up with store slot indexes).
    Vacant,
    /// The global id maps to `local` on `shard`; `live` tracks removal.
    Held { shard: u32, local: u32, live: bool },
}

/// One shard: its inner service plus the local→global id spaces.
struct Shard {
    service: QueryService,
    route_l2g: IdSpace,
    transition_l2g: IdSpace,
}

/// Decoded router checkpoint meta.
struct RouterMeta {
    grid: CellGrid,
    shards: usize,
    route_dir: Vec<Slot>,
    transition_dir: Vec<Slot>,
}

/// A spatially sharded [`QueryService`] fleet behind a footprint-pruned
/// router. Construction is [`ShardedService::bulk_build`] (in memory) or
/// [`ShardedService::open`] (from a per-shard storage layout); the query
/// and update API mirrors [`QueryService`], and every answer — batch
/// results, subscription results and their delta streams — is byte-identical
/// to an unsharded service over the same data (see the module docs for the
/// argument, `tests/service_sharded.rs` for the enforcement).
pub struct ShardedService {
    grid: CellGrid,
    config: ShardedConfig,
    /// Full-city route store: filter construction and endpoint verification
    /// are global decisions, so the router keeps the complete (small) route
    /// set while transitions (the bulk) stay sharded. Global route ids are
    /// exactly this store's slot indexes.
    planner: RouteStore,
    shards: Vec<Shard>,
    route_dir: Vec<Slot>,
    transition_dir: Vec<Slot>,
    cache: Mutex<ResultCache>,
    generation: AtomicU64,
    monitor: SubscriptionRegistry,
    /// Advisory registration: which shards each subscription's footprint
    /// overlaps (see [`ShardedService::subscription_shards`]). *Not* used to
    /// skip classification — transitions are routed by origin cell, so a
    /// shard outside a footprint can still own a transition whose
    /// destination falls inside it.
    sub_shards: BTreeMap<u64, Vec<usize>>,
    storage: Option<Storage>,
    storage_root: Option<PathBuf>,
    storage_config: Option<StorageConfig>,
    metrics: ServiceMetrics,
    router: RouterMetrics,
}

/// Translates a global sorted result into a shard's local id space, keeping
/// only the transitions the shard owns. `to_local` is monotone, so the
/// output stays sorted.
fn translate_result(space: &IdSpace, result: &[TransitionId]) -> Vec<TransitionId> {
    result
        .iter()
        .filter_map(|t| space.to_local(t.raw()).map(TransitionId))
        .collect()
}

/// Resolves a global transition id to its endpoints through the routing
/// directory (`None` for vacant, dead or unknown ids).
fn endpoints_of(dir: &[Slot], shards: &[Shard], id: TransitionId) -> Option<(Point, Point)> {
    match dir.get(id.index())? {
        Slot::Held {
            shard,
            local,
            live: true,
        } => shards
            .get(*shard as usize)?
            .service
            .transitions()
            .get(TransitionId(*local))
            .map(|t| (t.origin, t.destination)),
        _ => None,
    }
}

impl ShardedService {
    /// Builds a sharded service from raw data: computes the dataset MBR,
    /// lays a Z-order grid over it, partitions routes and transitions to
    /// shards by representative point (first route vertex / transition
    /// origin) and bulk-builds each shard's stores plus the planner replica.
    /// Global ids are assigned exactly as the unsharded bulk build would
    /// (invalid items are skipped and consume no id).
    pub fn bulk_build(
        config: ShardedConfig,
        routes: Vec<Vec<Point>>,
        transitions: Vec<(Point, Point)>,
    ) -> Self {
        let shard_count = config.shards.max(1);
        let mut mbr = Rect::empty();
        for route in &routes {
            for p in route {
                if p.is_finite() {
                    mbr.expand_to_point(p);
                }
            }
        }
        for (origin, destination) in &transitions {
            if origin.is_finite() {
                mbr.expand_to_point(origin);
            }
            if destination.is_finite() {
                mbr.expand_to_point(destination);
            }
        }
        if mbr.is_empty() {
            mbr = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        }
        let grid = CellGrid::new(mbr, config.grid_bits);
        let (planner, _) = RouteStore::bulk_build(config.rtree, routes.clone());
        let rp = partition_routes(config.rtree, routes, shard_count, |points| {
            grid.shard_of_point(&points[0], shard_count)
        });
        let tp = partition_transitions(config.rtree, transitions, shard_count, |origin, _| {
            grid.shard_of_point(origin, shard_count)
        });

        let mut next_route_local = vec![0u32; shard_count];
        let route_dir: Vec<Slot> = rp
            .owners
            .iter()
            .map(|&owner| {
                let local = next_route_local[owner as usize];
                next_route_local[owner as usize] += 1;
                Slot::Held {
                    shard: owner,
                    local,
                    live: true,
                }
            })
            .collect();
        let mut next_transition_local = vec![0u32; shard_count];
        let transition_dir: Vec<Slot> = tp
            .owners
            .iter()
            .map(|&owner| {
                let local = next_transition_local[owner as usize];
                next_transition_local[owner as usize] += 1;
                Slot::Held {
                    shard: owner,
                    local,
                    live: true,
                }
            })
            .collect();

        let shards: Vec<Shard> = rp
            .stores
            .into_iter()
            .zip(rp.spaces)
            .zip(tp.stores.into_iter().zip(tp.spaces))
            .map(
                |((route_store, route_l2g), (transition_store, transition_l2g))| Shard {
                    service: QueryService::new(route_store, transition_store, config.base),
                    route_l2g,
                    transition_l2g,
                },
            )
            .collect();

        let (metrics, router) = ServiceMetrics::new_with_router(shard_count);
        let cache = Mutex::new(ResultCache::with_counters(
            config.base.cache_capacity,
            config.base.cache_seed,
            metrics.cache.clone(),
        ));
        ShardedService {
            grid,
            config: ShardedConfig {
                shards: shard_count,
                ..config
            },
            planner,
            shards,
            route_dir,
            transition_dir,
            cache,
            generation: AtomicU64::new(0),
            monitor: SubscriptionRegistry::default(),
            sub_shards: BTreeMap::new(),
            storage: None,
            storage_root: None,
            storage_config: None,
            metrics,
            router,
        }
    }

    // ------------------------------------------------------------------
    // Query path.
    // ------------------------------------------------------------------

    /// Answers one query (through the cache; see
    /// [`ShardedService::execute_batch`] for the batched path).
    pub fn execute(&self, query: &RknntQuery) -> RknntResult {
        let (mut results, _) = self.execute_batch(std::slice::from_ref(query));
        results.pop().expect("one query in, one result out")
    }

    /// Executes a batch of queries with the same pipeline as
    /// [`QueryService::execute_batch`] — cache lookup, policy + spatial
    /// grouping, worker-pool execution, deterministic merge — except that
    /// group execution routes each fresh query across the shard fleet: the
    /// filter is built once against the planner, shards whose TR-tree root
    /// MBR the filter covers are skipped (`router.shards_pruned`), the rest
    /// are pruned individually and their candidates verified together
    /// against the planner. Returned transition sets are byte-identical to
    /// the unsharded service's.
    pub fn execute_batch(&self, queries: &[RknntQuery]) -> (Vec<RknntResult>, BatchStats) {
        self.execute_batch_traced(queries, None)
    }

    /// [`ShardedService::execute_batch`] with request tracing — the sharded
    /// mirror of [`QueryService::execute_batch_traced`]. On top of the
    /// per-phase spans, every routed query records one `shard` span per
    /// shard it considered, carrying the routing decision as attributes:
    /// `pruned=1 certificate=1` when the root-MBR certificate skipped the
    /// shard without dispatching, or `pruned=0` with the local candidate
    /// count when it was consulted.
    pub fn execute_batch_traced(
        &self,
        queries: &[RknntQuery],
        trace: Option<&TraceCursor>,
    ) -> (Vec<RknntResult>, BatchStats) {
        let mut stats = BatchStats {
            queries: queries.len(),
            ..BatchStats::default()
        };
        let mut slots: Vec<Option<RknntResult>> = vec![None; queries.len()];
        if queries.is_empty() {
            return (Vec::new(), stats);
        }
        let batch_span = trace.map(|t| t.begin("batch"));
        let bt = trace.zip(batch_span).map(|(t, s)| t.at(s));
        let generation_at_start = self.generation();
        self.metrics.batches.inc();
        self.metrics.queries.add(queries.len() as u64);
        let base = self.metrics.batch_view();

        // Phase 1: cache lookup.
        let span = Span::enter(&self.metrics.stage_lookup);
        let caching = self.config.base.cache_capacity > 0;
        let mut keys: Vec<Option<CacheKey>> = Vec::with_capacity(queries.len());
        let mut miss_indexes: Vec<usize> = Vec::new();
        if caching {
            let mut cache = self.cache.lock().expect("cache lock");
            for (i, query) in queries.iter().enumerate() {
                let key = CacheKey::of(query);
                match cache.get(&key) {
                    Some(result) => {
                        slots[i] = Some(result);
                        keys.push(Some(key));
                    }
                    None => {
                        miss_indexes.push(i);
                        keys.push(Some(key));
                    }
                }
            }
        } else {
            keys.resize_with(queries.len(), || None);
            miss_indexes.extend(0..queries.len());
        }
        stats.timings.lookup = span.finish();
        stats.cache_hits = (self.metrics.cache.hits.get() - base.cache_hits) as usize;
        if let Some(bt) = &bt {
            bt.record(
                "cache_lookup",
                stats.timings.lookup.as_nanos() as u64,
                &[
                    ("queries", queries.len() as u64),
                    ("cache_hits", stats.cache_hits as u64),
                ],
            );
        }
        self.metrics.record_event(EventKind::BatchAdmitted {
            queries: u32::try_from(queries.len()).unwrap_or(u32::MAX),
            cache_hits: u32::try_from(stats.cache_hits).unwrap_or(u32::MAX),
        });

        // Phase 2: policy + spatial grouping of the misses.
        let span = Span::enter(&self.metrics.stage_grouping);
        let groups = form_groups(
            queries,
            &miss_indexes,
            self.config.base.policy,
            self.config.base.group_cell,
        );
        stats.groups = groups.len();
        self.metrics.groups.add(groups.len() as u64);
        stats.timings.grouping = span.finish();
        if let Some(bt) = &bt {
            bt.record(
                "grouping",
                stats.timings.grouping.as_nanos() as u64,
                &[("groups", groups.len() as u64)],
            );
        }

        // Phase 3: routed execution over the worker pool.
        let span = Span::enter(&self.metrics.stage_execution);
        let exec_span = bt.as_ref().map(|t| t.begin("execution"));
        let et = bt.as_ref().zip(exec_span).map(|(t, s)| t.at(s));
        let (computed, workers_used) = self.run_sharded_groups(&groups, et.as_ref());
        stats.workers_used = workers_used;
        stats.timings.execution = span.finish();
        if let (Some(bt), Some(exec_span)) = (&bt, exec_span) {
            bt.end_with(exec_span, &[("workers", workers_used as u64)]);
        }

        // Phase 4: merge into input order and feed the cache. Every
        // non-degenerate result already carries its footprint (the router
        // builds the filter for every engine kind), so no fallback pass.
        let span = Span::enter(&self.metrics.stage_finalize);
        if caching {
            let mut cache = self.cache.lock().expect("cache lock");
            let fresh = self.generation() == generation_at_start;
            for (index, result, footprint) in computed {
                if fresh {
                    if let Some(key) = keys[index].take() {
                        let region =
                            EntryRegion::record_with(&queries[index], &result, footprint, |id| {
                                endpoints_of(&self.transition_dir, &self.shards, id)
                            });
                        cache.insert(key, result.clone(), region);
                    }
                }
                slots[index] = Some(result);
            }
        } else {
            for (index, result, _) in computed {
                slots[index] = Some(result);
            }
        }
        let results: Vec<RknntResult> = slots
            .into_iter()
            .map(|slot| slot.expect("every query produced a result"))
            .collect();
        stats.timings.finalize = span.finish();
        let view = self.metrics.batch_view();
        stats.filter_constructions =
            (view.filter_constructions - base.filter_constructions) as usize;
        stats.filters_saved = (view.filters_saved - base.filters_saved) as usize;
        stats.duplicates_coalesced =
            (view.duplicates_coalesced - base.duplicates_coalesced) as usize;
        if let Some(bt) = &bt {
            bt.record(
                "finalize",
                stats.timings.finalize.as_nanos() as u64,
                &[("filter_constructions", stats.filter_constructions as u64)],
            );
        }
        if let (Some(t), Some(batch_span)) = (trace, batch_span) {
            t.end_with(
                batch_span,
                &[
                    ("queries", queries.len() as u64),
                    ("cache_hits", stats.cache_hits as u64),
                    ("groups", stats.groups as u64),
                ],
            );
        }
        (results, stats)
    }

    /// Executes one routed query: per-shard prune behind the root-MBR
    /// skip certificate, then global verification against the planner.
    ///
    /// The result is byte-identical to the unsharded filter–refine
    /// execution (and therefore to every engine): an endpoint survives
    /// pruning iff `filters_point` accepts it — node-level `filters_rect`
    /// tests, including the shard-root test used here, are certificates for
    /// their whole subtree — so the union of per-shard candidates equals
    /// the unsharded candidate set; each transition is owned by exactly one
    /// shard, so the union has no duplicates; and verification per
    /// candidate uses the same planner-wide closer-route count.
    fn route_query(
        &self,
        nlist: &NList,
        query: &RknntQuery,
        outcome: &FilterOutcome,
        use_voronoi: bool,
        trace: Option<&TraceCursor>,
    ) -> RknntResult {
        let mut result = RknntResult::default();

        let prune_started = Instant::now();
        let mut candidates: Vec<CandidateEndpoint> = Vec::new();
        let mut pruned_nodes = 0usize;
        let mut consulted = 0u64;
        for (index, shard) in self.shards.iter().enumerate() {
            // An empty shard has nothing to consult or prune.
            let Some(root) = shard.service.transitions().rtree().root() else {
                continue;
            };
            if outcome
                .filter_set
                .filters_rect(&root.mbr(), query.k, use_voronoi)
            {
                // The certificate covers the shard's whole TR-tree: no
                // candidate can live there, skip without dispatching.
                self.router.shards_pruned.inc();
                pruned_nodes += 1;
                if let Some(t) = trace {
                    // Zero-duration marker: the decision itself is the
                    // interesting part, not the (sub-microsecond) test.
                    t.record(
                        "shard",
                        0,
                        &[("shard", index as u64), ("pruned", 1), ("certificate", 1)],
                    );
                }
                continue;
            }
            consulted += 1;
            self.router.dispatches.inc();
            self.router.shard_dispatches[index].inc();
            let shard_span = trace.map(|t| t.begin("shard"));
            let local = prune_transitions(
                shard.service.transitions(),
                &outcome.filter_set,
                query.k,
                use_voronoi,
            );
            if let (Some(t), Some(span)) = (trace, shard_span) {
                t.end_with(
                    span,
                    &[
                        ("shard", index as u64),
                        ("pruned", 0),
                        ("candidates", local.candidates.len() as u64),
                    ],
                );
            }
            self.metrics.record_event(EventKind::ShardDispatch {
                shard: index as u32,
                candidates: u32::try_from(local.candidates.len()).unwrap_or(u32::MAX),
            });
            pruned_nodes += local.pruned_nodes;
            for cand in local.candidates {
                let global = shard
                    .transition_l2g
                    .to_global(cand.transition.raw())
                    .expect("pruned transition must be in the shard's id space");
                candidates.push(CandidateEndpoint {
                    transition: TransitionId(global),
                    ..cand
                });
            }
        }
        self.router.executions.inc();
        self.router.fanout.record(consulted);
        let filtering = prune_started.elapsed();

        let verify_started = Instant::now();
        let mut per_transition: HashMap<TransitionId, (bool, bool)> = HashMap::new();
        let mut verified_endpoints = 0usize;
        for cand in &candidates {
            let threshold_sq = point_route_distance_sq(&cand.point, &query.route);
            let ok =
                count_closer_routes_sq(&self.planner, nlist, &cand.point, threshold_sq, query.k)
                    < query.k;
            if ok {
                verified_endpoints += 1;
            }
            let entry = per_transition
                .entry(cand.transition)
                .or_insert((false, false));
            match cand.kind {
                EndpointKind::Origin => entry.0 |= ok,
                EndpointKind::Destination => entry.1 |= ok,
            }
        }
        for (transition, (origin_ok, dest_ok)) in &per_transition {
            let include = match query.semantics {
                Semantics::Exists => *origin_ok || *dest_ok,
                Semantics::ForAll => *origin_ok && *dest_ok,
            };
            if include {
                result.transitions.push(*transition);
            }
        }
        result.transitions.sort_unstable();
        result.timings = PhaseTimings {
            filtering,
            verification: verify_started.elapsed(),
        };
        result.stats = QueryStats {
            filter_points: outcome.filter_set.num_points(),
            filter_routes: outcome.filter_set.num_routes(),
            refine_nodes: outcome.refine_nodes.len(),
            pruned_tr_nodes: pruned_nodes,
            candidate_endpoints: candidates.len(),
            verified_endpoints,
            result_transitions: result.transitions.len(),
        };
        result
    }

    /// Executes one group through the router: same coalescing and filter
    /// sharing as [`crate::batch::run_group`], but every fresh query routes
    /// across the shards via [`ShardedService::route_query`]. The filter is
    /// built for *every* engine kind (all engines agree on result
    /// transitions, so routing through the filter pipeline preserves
    /// byte-identity while giving every cached entry a real footprint).
    fn run_shard_group(
        &self,
        nlist: &NList,
        group: &Group<'_>,
        out: &mut Vec<GroupOutput>,
        trace: Option<&TraceCursor>,
    ) {
        // Mirrors `crate::batch::run_group`'s trace shape: a "group" span
        // with "filter_build" children, plus the router's per-shard spans
        // recorded by `route_query` below.
        let group_span = trace.map(|t| (t.clone(), t.begin("group")));
        let group_trace = group_span.as_ref().map(|(t, span)| t.at(*span));
        let mut filter_builds = 0u64;
        // Exact-identity keys mirroring `crate::batch::RouteBits`: coalescing
        // keys on (route bits, k, semantics), filter sharing only on
        // (route bits, k) since the filter set is semantics-independent.
        type RouteBits = Vec<(u64, u64)>;
        type SharedFilter = (FilterOutcome, Arc<FilterFootprint>);
        let use_voronoi = matches!(group.kind, EngineKind::Voronoi);
        let mut seen: HashMap<(RouteBits, usize, Semantics), usize> = HashMap::new();
        let mut filters: HashMap<(RouteBits, usize), SharedFilter> = HashMap::new();
        for job in &group.jobs {
            let bits = route_bits(&job.query.route);
            let full_key = (bits.clone(), job.query.k, job.query.semantics);
            if let Some(&first) = seen.get(&full_key) {
                let (_, result, footprint) = &out[first];
                let cloned = (job.index, result.clone(), footprint.clone());
                out.push(cloned);
                self.metrics.duplicates_coalesced.inc();
                continue;
            }
            let (result, footprint) = if job.query.is_degenerate() {
                (RknntResult::default(), None)
            } else {
                let filter_key = (bits, job.query.k);
                let (outcome, footprint) = match filters.entry(filter_key) {
                    Entry::Occupied(entry) => {
                        self.metrics.filters_saved.inc();
                        entry.into_mut()
                    }
                    Entry::Vacant(entry) => {
                        self.metrics.filter_constructions.inc();
                        filter_builds += 1;
                        let span = group_trace.as_ref().map(|t| t.begin("filter_build"));
                        let outcome =
                            build_filter_set(&self.planner, &job.query.route, job.query.k);
                        if let (Some(t), Some(span)) = (group_trace.as_ref(), span) {
                            t.end_with(span, &[("k", job.query.k as u64)]);
                        }
                        let footprint =
                            Arc::new(FilterFootprint::from_outcome(&job.query.route, &outcome));
                        entry.insert((outcome, footprint))
                    }
                };
                (
                    self.route_query(nlist, job.query, outcome, use_voronoi, group_trace.as_ref()),
                    Some(footprint.clone()),
                )
            };
            self.metrics.record_engine_timings(&result.timings);
            seen.insert(full_key, out.len());
            out.push((job.index, result, footprint));
        }
        if let Some((t, span)) = group_span {
            t.end_with(
                span,
                &[
                    ("jobs", group.jobs.len() as u64),
                    ("filter_builds", filter_builds),
                ],
            );
        }
    }

    /// Executes pre-formed groups over the worker pool (round-robin group
    /// sharding, scoped threads, one planner [`NList`] per worker).
    fn run_sharded_groups(
        &self,
        groups: &[Group<'_>],
        trace: Option<&TraceCursor>,
    ) -> (Vec<GroupOutput>, usize) {
        let workers = self.config.base.workers.max(1).min(groups.len().max(1));
        let workers_used = if groups.is_empty() { 0 } else { workers };
        let mut computed: Vec<GroupOutput> = Vec::new();
        if workers <= 1 {
            let worker_span = match (trace, groups.is_empty()) {
                (Some(t), false) => Some((t.clone(), t.begin("worker"))),
                _ => None,
            };
            let wt = worker_span.as_ref().map(|(t, s)| t.at(*s));
            let nlist = NList::build(&self.planner);
            for group in groups {
                self.run_shard_group(&nlist, group, &mut computed, wt.as_ref());
            }
            if let Some((t, span)) = worker_span {
                t.end_with(span, &[("worker", 0), ("groups", groups.len() as u64)]);
            }
        } else {
            let assignments: Vec<Vec<&Group>> = (0..workers)
                .map(|w| groups.iter().skip(w).step_by(workers).collect())
                .collect();
            let outputs = std::thread::scope(|scope| {
                let handles: Vec<_> = assignments
                    .into_iter()
                    .enumerate()
                    .map(|(w, list)| {
                        let wt: Option<TraceCursor> = trace.cloned();
                        scope.spawn(move || {
                            let shard_groups = list.len() as u64;
                            let span = wt.as_ref().map(|t| t.begin("worker"));
                            let child = wt.as_ref().zip(span).map(|(t, s)| t.at(s));
                            let nlist = NList::build(&self.planner);
                            let mut out = Vec::new();
                            for group in list {
                                self.run_shard_group(&nlist, group, &mut out, child.as_ref());
                            }
                            if let (Some(t), Some(span)) = (wt.as_ref(), span) {
                                t.end_with(span, &[("worker", w as u64), ("groups", shard_groups)]);
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("sharded worker panicked"))
                    .collect::<Vec<_>>()
            });
            for out in outputs {
                computed.extend(out);
            }
        }
        (computed, workers_used)
    }

    /// Executes queries through grouping + routing, bypassing the result
    /// cache in both directions (subscription (re-)execution).
    fn execute_uncached(
        &self,
        queries: &[RknntQuery],
    ) -> Vec<(RknntResult, Option<Arc<FilterFootprint>>)> {
        let miss_indexes: Vec<usize> = (0..queries.len()).collect();
        let groups = form_groups(
            queries,
            &miss_indexes,
            self.config.base.policy,
            self.config.base.group_cell,
        );
        let (computed, _) = self.run_sharded_groups(&groups, None);
        let mut slots: Vec<Option<(RknntResult, Option<Arc<FilterFootprint>>)>> =
            (0..queries.len()).map(|_| None).collect();
        for (index, result, footprint) in computed {
            slots[index] = Some((result, footprint));
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every query produced a result"))
            .collect()
    }

    // ------------------------------------------------------------------
    // Update path.
    // ------------------------------------------------------------------

    /// Applies incremental updates: each is routed to its owning shard
    /// (transition inserts and route inserts by the representative point's
    /// grid cell; removals through the routing directory), the planner
    /// replica is kept in lock-step, the router's cache is region-evicted
    /// and subscriptions are classified with per-shard certificates — the
    /// sharded mirror of [`QueryService::apply_updates`], with identical
    /// [`UpdateStats`] semantics and byte-identical delta streams.
    ///
    /// # Panics
    /// Panics when storage is attached and a WAL append fails (router or
    /// shard level); use [`ShardedService::try_apply_updates`] to handle
    /// router-level append errors.
    pub fn apply_updates(&mut self, updates: Vec<StoreUpdate>) -> UpdateStats {
        self.try_apply_updates(updates)
            .expect("WAL append failed (use try_apply_updates to handle storage errors)")
    }

    /// Fallible form of [`ShardedService::apply_updates`]: the router's WAL
    /// append error is returned instead of panicking (the stores are then
    /// untouched). The router logs every update in **global** form before
    /// anything applies; forwarding then double-logs each accepted update in
    /// the owning shard's local WAL, and [`ShardedService::open`] reconciles
    /// the two ledgers after a crash between the appends.
    pub fn try_apply_updates(
        &mut self,
        updates: Vec<StoreUpdate>,
    ) -> Result<UpdateStats, StorageError> {
        self.try_apply_updates_traced(updates, None)
    }

    /// [`ShardedService::apply_updates`] with request tracing: the
    /// router-level WAL append gets a `wal_append` span carrying frame and
    /// byte counts (shard-local double-logging stays untraced — it rides
    /// the forwarded per-shard `apply_updates` calls).
    ///
    /// # Panics
    /// Panics when storage is attached and a WAL append fails.
    pub fn apply_updates_traced(
        &mut self,
        updates: Vec<StoreUpdate>,
        trace: Option<&TraceCursor>,
    ) -> UpdateStats {
        self.try_apply_updates_traced(updates, trace)
            .expect("WAL append failed (use try_apply_updates_traced to handle storage errors)")
    }

    /// Fallible form of [`ShardedService::apply_updates_traced`] — the same
    /// error contract as [`ShardedService::try_apply_updates`].
    pub fn try_apply_updates_traced(
        &mut self,
        updates: Vec<StoreUpdate>,
        trace: Option<&TraceCursor>,
    ) -> Result<UpdateStats, StorageError> {
        // Baseline before the append so router WAL frames land in the diff.
        let base = self.metrics.update_view();
        if let Some(storage) = &mut self.storage {
            let (records, bytes) = crate::durable::wal_records(&updates);
            let span = trace.map(|t| t.begin("wal_append"));
            storage.append(&records)?;
            if let (Some(t), Some(span)) = (trace, span) {
                t.end_with(span, &[("frames", records.len() as u64), ("bytes", bytes)]);
            }
        }
        let mut stats = UpdateStats {
            deltas: self.monitor.take_pending(),
            ..UpdateStats::default()
        };
        for update in updates {
            match update {
                StoreUpdate::InsertTransition {
                    origin,
                    destination,
                } => {
                    let owner = self.grid.shard_of_point(&origin, self.shards.len());
                    let global = self.transition_dir.len() as u32;
                    let shard = &mut self.shards[owner];
                    let forwarded =
                        shard
                            .service
                            .apply_updates(vec![StoreUpdate::InsertTransition {
                                origin,
                                destination,
                            }]);
                    let Some(local) = forwarded.inserted_transitions.first().copied() else {
                        // Store-boundary rejection (non-finite endpoint):
                        // no id consumed, mirroring the unsharded service.
                        self.metrics.update_rejected.inc();
                        continue;
                    };
                    debug_assert_eq!(local.index(), shard.transition_l2g.len());
                    shard.transition_l2g.push(global);
                    self.transition_dir.push(Slot::Held {
                        shard: owner as u32,
                        local: local.raw(),
                        live: true,
                    });
                    self.metrics.update_applied.inc();
                    stats.inserted_transitions.push(TransitionId(global));
                    let planner = &self.planner;
                    self.cache
                        .get_mut()
                        .expect("cache lock")
                        .evict_where(|_, _, region| {
                            !region.survives_transition_insert(planner, &origin, &destination)
                        });
                    self.classify(
                        &UpdateEffect::TransitionInsert {
                            origin: &origin,
                            destination: &destination,
                        },
                        &mut stats.deltas,
                    );
                }
                StoreUpdate::ExpireTransition(id) => {
                    let slot = self.transition_dir.get(id.index()).copied();
                    let Some(Slot::Held {
                        shard,
                        local,
                        live: true,
                    }) = slot
                    else {
                        self.metrics.update_rejected.inc();
                        continue;
                    };
                    let forwarded = self.shards[shard as usize]
                        .service
                        .apply_updates(vec![StoreUpdate::ExpireTransition(TransitionId(local))]);
                    debug_assert_eq!(forwarded.applied, 1, "directory said the id was live");
                    self.transition_dir[id.index()] = Slot::Held {
                        shard,
                        local,
                        live: false,
                    };
                    self.metrics.update_applied.inc();
                    self.cache
                        .get_mut()
                        .expect("cache lock")
                        .evict_where(|_, value, region| {
                            !region.survives_transition_remove(&value.transitions, id)
                        });
                    self.classify(&UpdateEffect::TransitionRemove { id }, &mut stats.deltas);
                }
                StoreUpdate::InsertRoute(points) => {
                    let dirty = Rect::from_points(&points).unwrap_or_else(Rect::empty);
                    let Some(global) = self.planner.insert_route(points.clone()) else {
                        self.metrics.update_rejected.inc();
                        continue;
                    };
                    debug_assert_eq!(global.index(), self.route_dir.len());
                    let owner = self.grid.shard_of_point(&points[0], self.shards.len());
                    let shard = &mut self.shards[owner];
                    let forwarded = shard
                        .service
                        .apply_updates(vec![StoreUpdate::InsertRoute(points)]);
                    let local = forwarded
                        .inserted_routes
                        .first()
                        .copied()
                        .expect("planner-accepted route cannot be rejected by a shard");
                    debug_assert_eq!(local.index(), shard.route_l2g.len());
                    shard.route_l2g.push(global.raw());
                    self.route_dir.push(Slot::Held {
                        shard: owner as u32,
                        local: local.raw(),
                        live: true,
                    });
                    self.metrics.update_applied.inc();
                    stats.inserted_routes.push(global);
                    self.cache
                        .get_mut()
                        .expect("cache lock")
                        .evict_where(|_, _, region| !region.survives_route_insert(&dirty));
                    self.classify(
                        &UpdateEffect::RouteInsert { mbr: &dirty },
                        &mut stats.deltas,
                    );
                }
                StoreUpdate::RemoveRoute(id) => {
                    let removed_points: Vec<Point> = self.planner.route_points(id).to_vec();
                    if !self.planner.remove_route(id) {
                        self.metrics.update_rejected.inc();
                        continue;
                    }
                    let Some(Slot::Held {
                        shard,
                        local,
                        live: true,
                    }) = self.route_dir.get(id.index()).copied()
                    else {
                        panic!("planner accepted removing a route the directory does not hold");
                    };
                    let forwarded = self.shards[shard as usize]
                        .service
                        .apply_updates(vec![StoreUpdate::RemoveRoute(RouteId(local))]);
                    debug_assert_eq!(forwarded.applied, 1, "directory said the route was live");
                    self.route_dir[id.index()] = Slot::Held {
                        shard,
                        local,
                        live: false,
                    };
                    self.metrics.update_applied.inc();
                    self.evict_for_route_removal(id, &removed_points);
                    self.classify(
                        &UpdateEffect::RouteRemove {
                            id,
                            points: &removed_points,
                        },
                        &mut stats.deltas,
                    );
                }
            }
        }
        self.reexecute_dirty_subscriptions(&mut stats.deltas);
        stats.retained_entries = self.cache.get_mut().expect("cache lock").len();
        let view = self.metrics.update_view();
        stats.applied = (view.applied - base.applied) as usize;
        stats.rejected = (view.rejected - base.rejected) as usize;
        stats.evicted_entries = (view.evicted_entries - base.evicted_entries) as usize;
        stats.full_drops = (view.full_drops - base.full_drops) as usize;
        stats.targeted_route_removals =
            (view.targeted_route_removals - base.targeted_route_removals) as usize;
        stats.subs_unaffected = (view.subs_unaffected - base.subs_unaffected) as usize;
        stats.subs_stable = (view.subs_stable - base.subs_stable) as usize;
        stats.subs_dirty = (view.subs_dirty - base.subs_dirty) as usize;
        stats.subs_reexecuted = (view.subs_reexecuted - base.subs_reexecuted) as usize;
        stats.wal_appends = (view.wal_appends - base.wal_appends) as usize;
        stats.wal_bytes = view.wal_bytes - base.wal_bytes;
        Ok(stats)
    }

    /// Classifies every live subscription against one applied update,
    /// supplying the sharded versions of the two store-dependent steps: the
    /// route-removal certificate ANDs the per-shard `survives_route_remove`
    /// tests (each over the shard-local slice of the result, all drawing on
    /// one shared budget), and region rebuilds resolve endpoints through the
    /// routing directory.
    fn classify(&mut self, effect: &UpdateEffect<'_>, deltas: &mut Vec<SubscriptionDelta>) {
        let planner = &self.planner;
        let shards = &self.shards;
        let dir = &self.transition_dir;
        self.monitor.classify_update_with(
            effect,
            planner,
            &self.metrics,
            deltas,
            |sub: &Subscription, removed: RouteId, points: &[Point]| {
                let mut budget = SUB_REMOVAL_BUDGET;
                shards.iter().all(|shard| {
                    let local_result = translate_result(&shard.transition_l2g, &sub.result);
                    sub.region.survives_route_remove(
                        planner,
                        shard.service.transitions(),
                        &local_result,
                        removed,
                        points,
                        &mut budget,
                    )
                })
            },
            |sub: &Subscription| {
                let value = RknntResult {
                    transitions: sub.result.clone(),
                    ..RknntResult::default()
                };
                EntryRegion::record_with(&sub.query, &value, sub.region.footprint.clone(), |id| {
                    endpoints_of(dir, shards, id)
                })
            },
        );
    }

    /// Cache maintenance for a removed route: the sharded version of the
    /// targeted-eviction plan, certifying each entry against every shard's
    /// TR-tree under one shared budget, with the same full-drop fallback.
    fn evict_for_route_removal(&mut self, id: RouteId, removed_points: &[Point]) {
        let planner = &self.planner;
        let shards = &self.shards;
        let cache = self.cache.get_mut().expect("cache lock");
        if cache.is_empty() {
            self.metrics.targeted_route_removals.inc();
            return;
        }
        let mut budget = ROUTE_REMOVAL_BUDGET_PER_ENTRY.saturating_mul(cache.len());
        let mut victims: Vec<CacheKey> = Vec::new();
        let mut exhausted = false;
        for (key, value, region) in cache.entries() {
            if budget == 0 {
                exhausted = true;
                break;
            }
            let survives = shards.iter().all(|shard| {
                let local_result = translate_result(&shard.transition_l2g, &value.transitions);
                region.survives_route_remove(
                    planner,
                    shard.service.transitions(),
                    &local_result,
                    id,
                    removed_points,
                    &mut budget,
                )
            });
            if !survives {
                victims.push(key.clone());
            }
        }
        if exhausted {
            self.metrics.full_drops.inc();
            self.metrics.record_event(EventKind::CacheEvicted {
                entries: u32::try_from(cache.len()).unwrap_or(u32::MAX),
                full_drop: true,
            });
            cache.invalidate_all();
        } else {
            self.metrics.targeted_route_removals.inc();
            self.metrics.record_event(EventKind::CacheEvicted {
                entries: u32::try_from(victims.len()).unwrap_or(u32::MAX),
                full_drop: false,
            });
            let victims: std::collections::HashSet<&CacheKey> = victims.iter().collect();
            cache.evict_where(|key, _, _| victims.contains(key));
        }
    }

    /// Re-executes every dirty subscription through the routed batch path,
    /// installing results, emitting deltas and refreshing the advisory
    /// shard registrations.
    fn reexecute_dirty_subscriptions(&mut self, deltas: &mut Vec<SubscriptionDelta>) {
        let dirty = self.monitor.dirty_ids();
        if dirty.is_empty() {
            return;
        }
        let queries: Vec<RknntQuery> = dirty
            .iter()
            .map(|id| self.monitor.query_of(*id).clone())
            .collect();
        let outputs = self.execute_uncached(&queries);
        for (id, (query, (result, footprint))) in dirty.iter().zip(queries.iter().zip(outputs)) {
            let region = EntryRegion::record_with(query, &result, footprint, |tid| {
                endpoints_of(&self.transition_dir, &self.shards, tid)
            });
            self.monitor
                .finish_reexecution(*id, result.transitions, region, &self.metrics, deltas);
        }
        for id in dirty {
            self.refresh_sub_shards(id);
        }
    }

    // ------------------------------------------------------------------
    // Subscriptions.
    // ------------------------------------------------------------------

    /// Registers a standing query (see [`QueryService::subscribe`]); the
    /// delta stream it produces under churn is byte-identical to the
    /// unsharded service's. The subscription is also registered against the
    /// shards its filter footprint overlaps
    /// ([`ShardedService::subscription_shards`]).
    pub fn subscribe(&mut self, query: RknntQuery) -> SubscriptionId {
        let (result, footprint) = self
            .execute_uncached(std::slice::from_ref(&query))
            .pop()
            .expect("one query in, one result out");
        let region = EntryRegion::record_with(&query, &result, footprint, |id| {
            endpoints_of(&self.transition_dir, &self.shards, id)
        });
        let id = self.monitor.insert(query, result.transitions, region);
        self.refresh_sub_shards(id.raw());
        id
    }

    /// Drops a subscription. Returns `false` for an unknown or already
    /// dropped id.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        self.sub_shards.remove(&id.raw());
        self.monitor.remove(id)
    }

    /// Number of live subscriptions.
    pub fn subscriptions(&self) -> usize {
        self.monitor.len()
    }

    /// Ids of all live subscriptions, ascending.
    pub fn subscription_ids(&self) -> Vec<SubscriptionId> {
        self.monitor.ids()
    }

    /// The standing query behind a subscription.
    pub fn subscription_query(&self, id: SubscriptionId) -> Option<&RknntQuery> {
        self.monitor.get(id).map(|sub| &sub.query)
    }

    /// The subscription's current result in **global** transition ids,
    /// sorted ascending — byte-identical to the unsharded service's.
    pub fn subscription_result(&self, id: SubscriptionId) -> Option<&[TransitionId]> {
        self.monitor.get(id).map(|sub| sub.result.as_slice())
    }

    /// The shards a subscription's filter footprint currently overlaps: a
    /// shard is listed unless it is empty or the footprint certifies its
    /// whole TR-tree root candidate-free. Advisory composition of the
    /// per-shard certificates (refreshed on subscribe, re-execution and
    /// reshard); classification itself always consults every shard, because
    /// origin-cell routing lets a shard own transitions whose destination
    /// endpoint lies outside its territory.
    pub fn subscription_shards(&self, id: SubscriptionId) -> Option<&[usize]> {
        self.sub_shards.get(&id.raw()).map(Vec::as_slice)
    }

    /// Drains subscription deltas buffered outside
    /// [`ShardedService::apply_updates`].
    pub fn take_subscription_deltas(&mut self) -> Vec<SubscriptionDelta> {
        self.monitor.take_pending()
    }

    /// Recomputes the advisory shard registration of one subscription.
    fn refresh_sub_shards(&mut self, raw: u64) {
        let overlap = match self.monitor.get(SubscriptionId(raw)) {
            Some(sub) => self.shard_overlap(sub),
            None => {
                self.sub_shards.remove(&raw);
                return;
            }
        };
        self.sub_shards.insert(raw, overlap);
    }

    /// The shards a subscription's footprint overlaps (all non-empty shards
    /// when no footprint was recorded; none for a degenerate query).
    fn shard_overlap(&self, sub: &Subscription) -> Vec<usize> {
        if sub.query.is_degenerate() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (index, shard) in self.shards.iter().enumerate() {
            let Some(root) = shard.service.transitions().rtree().root() else {
                continue;
            };
            let include = match &sub.region.footprint {
                None => true,
                Some(footprint) => {
                    !footprint.covers_rect(&sub.query.route, &root.mbr(), sub.query.k, |r| {
                        self.planner.route(r).is_some()
                    })
                }
            };
            if include {
                out.push(index);
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Durability.
    // ------------------------------------------------------------------

    /// Attaches a storage root to an in-memory fleet and writes the initial
    /// checkpoints: one `shard-NNN/` directory per shard (each shard's own
    /// WAL + snapshot) plus `router/` for the planner snapshot, the routing
    /// directory (checkpoint meta) and the global-form WAL. The root must
    /// hold neither flat storage data ([`StorageError::DirectoryNotEmpty`])
    /// nor an existing sharded layout ([`StorageError::ShardedLayout`] —
    /// recover that with [`ShardedService::open`]).
    pub fn attach_storage(
        &mut self,
        root: &Path,
        storage_config: StorageConfig,
    ) -> Result<StorageStats, StorageError> {
        if let Some(layout) = detect_shard_layout(root) {
            return Err(StorageError::ShardedLayout {
                dir: root.to_path_buf(),
                shards: layout.shard_count(),
            });
        }
        if dir_has_storage_data(root) {
            return Err(StorageError::DirectoryNotEmpty {
                dir: root.to_path_buf(),
            });
        }
        for (index, shard) in self.shards.iter_mut().enumerate() {
            shard
                .service
                .attach_storage(&root.join(shard_subdir(index)), storage_config)?;
        }
        let router_dir = root.join(ROUTER_SUBDIR);
        let (mut storage, recovery) = Storage::open(&router_dir, storage_config)?;
        if recovery.found_existing {
            return Err(StorageError::DirectoryNotEmpty { dir: router_dir });
        }
        storage.set_instruments(self.metrics.storage_instruments());
        let meta = self.encode_meta();
        let stats =
            storage.checkpoint_with_meta(&self.planner, &TransitionStore::default(), &meta)?;
        self.storage = Some(storage);
        self.storage_root = Some(root.to_path_buf());
        self.storage_config = Some(storage_config);
        Ok(stats)
    }

    /// Checkpoints the whole fleet: every shard first, then the router
    /// (planner snapshot + routing directory meta + WAL truncation). The
    /// ordering makes a crash between the two phases recoverable: the
    /// router's WAL tail then *over*-covers what its snapshot misses, and
    /// replay reconciliation skips what the shards already applied.
    pub fn checkpoint(&mut self) -> Result<StorageStats, StorageError> {
        if self.storage.is_none() {
            return Err(StorageError::NotAttached);
        }
        for shard in &mut self.shards {
            shard.service.checkpoint()?;
        }
        let meta = self.encode_meta();
        let storage = self.storage.as_mut().expect("checked above");
        storage.checkpoint_with_meta(&self.planner, &TransitionStore::default(), &meta)
    }

    /// Whether a storage root is attached.
    pub fn has_storage(&self) -> bool {
        self.storage.is_some()
    }

    /// The router's storage counters, when storage is attached (per-shard
    /// counters are on each shard's own metrics).
    pub fn storage_stats(&self) -> Option<StorageStats> {
        self.storage.as_ref().map(Storage::stats)
    }

    /// Opens a sharded fleet from a storage root written by
    /// [`ShardedService::attach_storage`] / [`ShardedService::checkpoint`].
    /// A root with no sharded layout yields an empty fleet attached to it
    /// (mirroring [`QueryService::open`] on an empty directory).
    ///
    /// Recovery opens the router directory (planner snapshot + routing
    /// directory meta), opens every shard through [`QueryService::open`]
    /// (each replays its own local WAL tail), rebuilds the local→global id
    /// spaces from the directory, and then replays the router's global-form
    /// WAL tail with per-record reconciliation: an insert whose owning shard
    /// already holds the predicted local slot, or a removal the shard
    /// already shows dead, only re-records the directory mapping — the
    /// crash fell between the router's append and the shard's. Everything
    /// else is forwarded through the normal shard update path. The decoded
    /// `shards` / `grid_bits` on disk are authoritative and override the
    /// passed config's.
    pub fn open(
        root: &Path,
        config: ShardedConfig,
        storage_config: StorageConfig,
    ) -> Result<(Self, StorageStats), StorageError> {
        let Some(layout) = detect_shard_layout(root) else {
            let mut service = Self::bulk_build(config, Vec::new(), Vec::new());
            let stats = service.attach_storage(root, storage_config)?;
            return Ok((service, stats));
        };
        let router_dir = root.join(ROUTER_SUBDIR);
        if !layout.router {
            return Err(StorageError::Corrupt {
                path: router_dir,
                offset: None,
                detail: "sharded layout has shard directories but no router storage".to_string(),
            });
        }
        if !layout.is_contiguous() {
            return Err(StorageError::Corrupt {
                path: root.to_path_buf(),
                offset: None,
                detail: format!(
                    "shard directories are not contiguous from zero: {:?}",
                    layout.shards
                ),
            });
        }
        let (mut storage, recovery) = Storage::open(&router_dir, storage_config)?;
        let Some((planner, _)) = recovery.stores else {
            return Err(StorageError::Corrupt {
                path: router_dir,
                offset: None,
                detail: "router directory holds no snapshot".to_string(),
            });
        };
        let meta = decode_meta(&recovery.meta).map_err(|e| StorageError::Corrupt {
            path: router_dir.clone(),
            offset: None,
            detail: format!("undecodable router meta: {e}"),
        })?;
        if meta.shards != layout.shard_count() {
            return Err(StorageError::Corrupt {
                path: root.to_path_buf(),
                offset: None,
                detail: format!(
                    "router meta names {} shard(s) but the layout holds {}",
                    meta.shards,
                    layout.shard_count()
                ),
            });
        }
        let mut shards = Vec::with_capacity(meta.shards);
        for index in 0..meta.shards {
            let (service, _) =
                QueryService::open(&root.join(shard_subdir(index)), config.base, storage_config)?;
            shards.push(Shard {
                service,
                route_l2g: IdSpace::new(),
                transition_l2g: IdSpace::new(),
            });
        }
        // Rebuild the local→global spaces from the directory; dead slots are
        // included (store slots persist as dead slots, keeping local indexes
        // aligned).
        for (gid, slot) in meta.route_dir.iter().enumerate() {
            if let Slot::Held { shard, local, .. } = slot {
                let space = &mut shards[*shard as usize].route_l2g;
                debug_assert_eq!(*local as usize, space.len());
                space.push(gid as u32);
            }
        }
        for (gid, slot) in meta.transition_dir.iter().enumerate() {
            if let Slot::Held { shard, local, .. } = slot {
                let space = &mut shards[*shard as usize].transition_l2g;
                debug_assert_eq!(*local as usize, space.len());
                space.push(gid as u32);
            }
        }
        let (metrics, router) = ServiceMetrics::new_with_router(meta.shards);
        let cache = Mutex::new(ResultCache::with_counters(
            config.base.cache_capacity,
            config.base.cache_seed,
            metrics.cache.clone(),
        ));
        let mut service = ShardedService {
            config: ShardedConfig {
                shards: meta.shards,
                grid_bits: meta.grid.bits(),
                ..config
            },
            grid: meta.grid,
            planner,
            shards,
            route_dir: meta.route_dir,
            transition_dir: meta.transition_dir,
            cache,
            generation: AtomicU64::new(0),
            monitor: SubscriptionRegistry::default(),
            sub_shards: BTreeMap::new(),
            storage: None,
            storage_root: Some(root.to_path_buf()),
            storage_config: Some(storage_config),
            metrics,
            router,
        };
        for record in &recovery.tail {
            let update =
                StoreUpdate::from_wal_record(record).map_err(|e| StorageError::Corrupt {
                    path: router_dir.clone(),
                    offset: None,
                    detail: format!("undecodable router WAL record: {e}"),
                })?;
            service.replay_update(update);
        }
        storage.set_instruments(service.metrics.storage_instruments());
        let stats = storage.stats();
        service.storage = Some(storage);
        Ok((service, stats))
    }

    /// Replays one router-WAL update during [`ShardedService::open`],
    /// reconciling the global ledger with what each shard already holds:
    /// the planner and directory always advance (they come from the router
    /// snapshot, strictly older than the WAL tail), but a record is
    /// forwarded to its owning shard only when the shard does not already
    /// show it applied — detected for inserts by comparing the predicted
    /// local slot with the shard's store bound, for removals by the item's
    /// liveness in the shard's store.
    fn replay_update(&mut self, update: StoreUpdate) {
        match update {
            StoreUpdate::InsertTransition {
                origin,
                destination,
            } => {
                if !origin.is_finite() || !destination.is_finite() {
                    // Was rejected originally; replay mirrors the rejection.
                    return;
                }
                let owner = self.grid.shard_of_point(&origin, self.shards.len());
                let global = self.transition_dir.len() as u32;
                let shard = &mut self.shards[owner];
                let predicted = shard.transition_l2g.len();
                if predicted >= shard.service.transitions().transition_id_bound() {
                    let forwarded =
                        shard
                            .service
                            .apply_updates(vec![StoreUpdate::InsertTransition {
                                origin,
                                destination,
                            }]);
                    debug_assert_eq!(
                        forwarded.inserted_transitions.first().map(|t| t.index()),
                        Some(predicted)
                    );
                }
                shard.transition_l2g.push(global);
                self.transition_dir.push(Slot::Held {
                    shard: owner as u32,
                    local: predicted as u32,
                    live: true,
                });
            }
            StoreUpdate::ExpireTransition(id) => {
                let Some(Slot::Held {
                    shard,
                    local,
                    live: true,
                }) = self.transition_dir.get(id.index()).copied()
                else {
                    return;
                };
                let owned = &mut self.shards[shard as usize];
                if owned
                    .service
                    .transitions()
                    .get(TransitionId(local))
                    .is_some()
                {
                    owned
                        .service
                        .apply_updates(vec![StoreUpdate::ExpireTransition(TransitionId(local))]);
                }
                self.transition_dir[id.index()] = Slot::Held {
                    shard,
                    local,
                    live: false,
                };
            }
            StoreUpdate::InsertRoute(points) => {
                let Some(global) = self.planner.insert_route(points.clone()) else {
                    return;
                };
                let owner = self.grid.shard_of_point(&points[0], self.shards.len());
                let shard = &mut self.shards[owner];
                let predicted = shard.route_l2g.len();
                if predicted >= shard.service.routes().route_id_bound() {
                    shard
                        .service
                        .apply_updates(vec![StoreUpdate::InsertRoute(points)]);
                }
                shard.route_l2g.push(global.raw());
                debug_assert_eq!(global.index(), self.route_dir.len());
                self.route_dir.push(Slot::Held {
                    shard: owner as u32,
                    local: predicted as u32,
                    live: true,
                });
            }
            StoreUpdate::RemoveRoute(id) => {
                if !self.planner.remove_route(id) {
                    return;
                }
                let Some(Slot::Held {
                    shard,
                    local,
                    live: true,
                }) = self.route_dir.get(id.index()).copied()
                else {
                    return;
                };
                let owned = &mut self.shards[shard as usize];
                if owned.service.routes().route(RouteId(local)).is_some() {
                    owned
                        .service
                        .apply_updates(vec![StoreUpdate::RemoveRoute(RouteId(local))]);
                }
                self.route_dir[id.index()] = Slot::Held {
                    shard,
                    local,
                    live: false,
                };
            }
        }
    }

    // ------------------------------------------------------------------
    // Reshard (split / merge).
    // ------------------------------------------------------------------

    /// Re-partitions the fleet to a new shard count and grid resolution:
    /// shard *split* (`shards` grows) and *merge* (`shards` shrinks) are the
    /// same operation. The global id spaces — planner slots and the routing
    /// directory's indexes — are preserved (dead slots stay dead), so query
    /// results, subscription results and future update semantics are
    /// unchanged; only item *placement* moves. Live data is gathered in
    /// global id order, a fresh grid is laid over its MBR, and each shard's
    /// stores are bulk-built anew with dense local ids. Metrics and the
    /// result cache are rebuilt fresh (counters restart from zero);
    /// subscriptions are kept as-is — their results cannot change, so no
    /// deltas are emitted — with advisory shard registrations refreshed.
    ///
    /// With storage attached, the old `shard-NNN/` and `router/` directories
    /// are removed and the root is re-attached and checkpointed, making the
    /// reshard itself the durable baseline (checkpoint → re-partition →
    /// checkpoint, not WAL replay).
    pub fn reshard(&mut self, shards: usize, grid_bits: u32) -> Result<(), StorageError> {
        let shard_count = shards.max(1);
        // Gather live items in global id order.
        let mut live_transitions: Vec<(u32, Point, Point)> = Vec::new();
        for (gid, slot) in self.transition_dir.iter().enumerate() {
            if let Slot::Held {
                shard,
                local,
                live: true,
            } = slot
            {
                let t = self.shards[*shard as usize]
                    .service
                    .transitions()
                    .get(TransitionId(*local))
                    .expect("live directory entry must resolve in its shard");
                live_transitions.push((gid as u32, t.origin, t.destination));
            }
        }
        let mut mbr = Rect::empty();
        for route in self.planner.routes() {
            for p in &route.points {
                mbr.expand_to_point(p);
            }
        }
        for (_, origin, destination) in &live_transitions {
            mbr.expand_to_point(origin);
            mbr.expand_to_point(destination);
        }
        if mbr.is_empty() {
            mbr = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        }
        let grid = CellGrid::new(mbr, grid_bits);

        // Re-place routes: fresh dense local ids, in global id order.
        let mut route_sets: Vec<Vec<Vec<Point>>> = vec![Vec::new(); shard_count];
        let mut route_spaces = vec![IdSpace::new(); shard_count];
        let mut new_route_dir = vec![Slot::Vacant; self.route_dir.len()];
        for (gid, slot) in self.route_dir.iter().enumerate() {
            if let Slot::Held { live: true, .. } = slot {
                let points = self.planner.route_points(RouteId(gid as u32)).to_vec();
                let owner = grid.shard_of_point(&points[0], shard_count);
                let local = route_spaces[owner].len() as u32;
                route_spaces[owner].push(gid as u32);
                route_sets[owner].push(points);
                new_route_dir[gid] = Slot::Held {
                    shard: owner as u32,
                    local,
                    live: true,
                };
            }
        }
        // Re-place transitions the same way.
        let mut transition_sets: Vec<Vec<(Point, Point)>> = vec![Vec::new(); shard_count];
        let mut transition_spaces = vec![IdSpace::new(); shard_count];
        let mut new_transition_dir = vec![Slot::Vacant; self.transition_dir.len()];
        for (gid, origin, destination) in &live_transitions {
            let owner = grid.shard_of_point(origin, shard_count);
            let local = transition_spaces[owner].len() as u32;
            transition_spaces[owner].push(*gid);
            transition_sets[owner].push((*origin, *destination));
            new_transition_dir[*gid as usize] = Slot::Held {
                shard: owner as u32,
                local,
                live: true,
            };
        }

        let shards: Vec<Shard> = route_sets
            .into_iter()
            .zip(route_spaces)
            .zip(transition_sets.into_iter().zip(transition_spaces))
            .map(|((routes, route_l2g), (transitions, transition_l2g))| {
                let (route_store, rejected) = RouteStore::bulk_build(self.config.rtree, routes);
                debug_assert_eq!(rejected, 0, "re-placed routes were already validated");
                let transition_store = TransitionStore::bulk_build(self.config.rtree, transitions);
                Shard {
                    service: QueryService::new(route_store, transition_store, self.config.base),
                    route_l2g,
                    transition_l2g,
                }
            })
            .collect();

        // Install the new topology. Metrics and cache are rebuilt fresh —
        // the registry's names are per-shard-count, and an empty cache is
        // the honest state after a topology change.
        let (metrics, router) = ServiceMetrics::new_with_router(shard_count);
        self.grid = grid;
        self.config.shards = shard_count;
        self.config.grid_bits = grid.bits();
        self.shards = shards;
        self.route_dir = new_route_dir;
        self.transition_dir = new_transition_dir;
        self.cache = Mutex::new(ResultCache::with_counters(
            self.config.base.cache_capacity,
            self.config.base.cache_seed,
            metrics.cache.clone(),
        ));
        self.metrics = metrics;
        self.router = router;
        self.generation.fetch_add(1, Ordering::SeqCst);
        let sub_ids: Vec<u64> = self.monitor.ids().iter().map(|id| id.raw()).collect();
        for id in sub_ids {
            self.refresh_sub_shards(id);
        }

        // Durable reshard: wipe the old layout and re-attach fresh (the old
        // shard services and router handle were just dropped with the swap).
        if let (Some(root), Some(storage_config)) = (self.storage_root.clone(), self.storage_config)
        {
            self.storage = None;
            let entries = std::fs::read_dir(&root).map_err(|e| StorageError::Io {
                context: "list storage root for reshard".to_string(),
                path: root.clone(),
                source: e,
            })?;
            for entry in entries {
                let entry = entry.map_err(|e| StorageError::Io {
                    context: "list storage root for reshard".to_string(),
                    path: root.clone(),
                    source: e,
                })?;
                let name = entry.file_name();
                let name = name.to_string_lossy();
                if name == ROUTER_SUBDIR || parse_shard_subdir(&name).is_some() {
                    std::fs::remove_dir_all(entry.path()).map_err(|e| StorageError::Io {
                        context: "remove stale shard directory".to_string(),
                        path: entry.path(),
                        source: e,
                    })?;
                }
            }
            self.attach_storage(&root, storage_config)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Introspection.
    // ------------------------------------------------------------------

    /// The configuration the fleet currently runs with (`shards` and
    /// `grid_bits` reflect opens and reshards).
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// The Z-order grid items are routed by.
    pub fn grid(&self) -> &CellGrid {
        &self.grid
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's inner service.
    pub fn shard_service(&self, index: usize) -> Option<&QueryService> {
        self.shards.get(index).map(|shard| &shard.service)
    }

    /// Read access to the planner replica (the full-city route store;
    /// global route ids are its slot indexes).
    pub fn routes(&self) -> &RouteStore {
        &self.planner
    }

    /// The router's store generation (bumped by
    /// [`ShardedService::invalidate_all`] and [`ShardedService::reshard`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Drops every cached result and bumps the generation.
    pub fn invalidate_all(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
        self.cache.lock().expect("cache lock").invalidate_all();
    }

    /// Result-cache counter snapshot (the router's global cache).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock").stats()
    }

    /// Number of results currently cached.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// The router's metric catalog (`router.*`, `shard.<i>.dispatches` and
    /// the full service catalog for the router-level pipeline).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// A point-in-time copy of the router's registered metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Router metrics plus every shard's catalog in the text exposition
    /// format; shard lines are prefixed `shard.<i>.`.
    pub fn metrics_text(&self) -> String {
        let mut text = self.metrics.render_text();
        for (index, shard) in self.shards.iter().enumerate() {
            for line in shard.service.metrics_text().lines() {
                text.push_str(&format!("shard.{index}.{line}\n"));
            }
        }
        text
    }

    /// Shared handle to the router's flight recorder.
    pub fn flight_recorder(&self) -> Arc<FlightRecorder> {
        self.metrics.recorder().clone()
    }

    /// Switches timing instrumentation on or off for the router and every
    /// shard together.
    pub fn set_metrics_enabled(&self, on: bool) {
        self.metrics.set_enabled(on);
        for shard in &self.shards {
            shard.service.set_metrics_enabled(on);
        }
    }

    /// Point-in-time routing counters (executions, dispatches, prunes); the
    /// mean fan-out is `dispatches / executions`.
    pub fn router_stats(&self) -> crate::RouterStats {
        self.router.stats()
    }

    /// The shards the router would consult for this query under the given
    /// engine kind — the shard-pruning certificate evaluated outside the
    /// execution path, for soundness testing and capacity planning. Every
    /// non-empty shard *not* listed is certified candidate-free for the
    /// query.
    pub fn planned_shards(&self, query: &RknntQuery, kind: EngineKind) -> Vec<usize> {
        if query.is_degenerate() {
            return Vec::new();
        }
        let outcome = build_filter_set(&self.planner, &query.route, query.k);
        let use_voronoi = matches!(kind, EngineKind::Voronoi);
        let mut out = Vec::new();
        for (index, shard) in self.shards.iter().enumerate() {
            let Some(root) = shard.service.transitions().rtree().root() else {
                continue;
            };
            if !outcome
                .filter_set
                .filters_rect(&root.mbr(), query.k, use_voronoi)
            {
                out.push(index);
            }
        }
        out
    }

    /// The owning shard of a live global transition id.
    pub fn transition_owner(&self, id: TransitionId) -> Option<usize> {
        match self.transition_dir.get(id.index())? {
            Slot::Held {
                shard, live: true, ..
            } => Some(*shard as usize),
            _ => None,
        }
    }

    /// Endpoints of a live global transition id, resolved through the
    /// routing directory.
    pub fn transition_endpoints(&self, id: TransitionId) -> Option<(Point, Point)> {
        endpoints_of(&self.transition_dir, &self.shards, id)
    }

    /// Number of live transitions across the fleet.
    pub fn num_transitions(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| shard.service.transitions().len())
            .sum()
    }

    /// Encodes the routing state carried in the router checkpoint's meta
    /// block: grid MBR + bits, shard count and both directories.
    fn encode_meta(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.u8(META_VERSION);
        let mbr = self.grid.mbr();
        enc.f64(mbr.min.x);
        enc.f64(mbr.min.y);
        enc.f64(mbr.max.x);
        enc.f64(mbr.max.y);
        enc.u32(self.grid.bits());
        enc.u32(self.shards.len() as u32);
        encode_dir(&mut enc, &self.route_dir);
        encode_dir(&mut enc, &self.transition_dir);
        enc.into_bytes()
    }
}

/// Encodes one routing directory (length-prefixed tagged slots).
fn encode_dir(enc: &mut Encoder, dir: &[Slot]) {
    enc.len_prefix(dir.len());
    for slot in dir {
        match slot {
            Slot::Vacant => enc.u8(SLOT_VACANT),
            Slot::Held { shard, local, live } => {
                enc.u8(if *live { SLOT_LIVE } else { SLOT_DEAD });
                enc.u32(*shard);
                enc.u32(*local);
            }
        }
    }
}

/// Decodes one routing directory.
fn decode_dir(dec: &mut Decoder<'_>) -> Result<Vec<Slot>, CodecError> {
    let len = dec.len_prefix(1)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let slot = match dec.u8()? {
            SLOT_VACANT => Slot::Vacant,
            tag @ (SLOT_LIVE | SLOT_DEAD) => Slot::Held {
                shard: dec.u32()?,
                local: dec.u32()?,
                live: tag == SLOT_LIVE,
            },
            tag => {
                return Err(CodecError {
                    offset: 0,
                    detail: format!("unknown directory slot tag {tag}"),
                })
            }
        };
        out.push(slot);
    }
    Ok(out)
}

/// Decodes the router checkpoint's meta block.
fn decode_meta(bytes: &[u8]) -> Result<RouterMeta, CodecError> {
    let mut dec = Decoder::new(bytes);
    let version = dec.u8()?;
    if version != META_VERSION {
        return Err(CodecError {
            offset: 0,
            detail: format!("unsupported router meta version {version}"),
        });
    }
    let min = Point::new(dec.f64()?, dec.f64()?);
    let max = Point::new(dec.f64()?, dec.f64()?);
    let bits = dec.u32()?;
    let shards = dec.u32()? as usize;
    let route_dir = decode_dir(&mut dec)?;
    let transition_dir = decode_dir(&mut dec)?;
    dec.expect_exhausted()?;
    Ok(RouterMeta {
        grid: CellGrid::new(Rect::new(min, max), bits),
        shards,
        route_dir,
        transition_dir,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn grid_world() -> (Vec<Vec<Point>>, Vec<(Point, Point)>) {
        let mut routes = Vec::new();
        for i in 0..6 {
            let y = 100.0 * i as f64;
            routes.push(vec![p(0.0, y), p(250.0, y + 20.0), p(500.0, y)]);
        }
        let mut transitions = Vec::new();
        for i in 0..40 {
            let x = (i % 8) as f64 * 60.0;
            let y = (i / 8) as f64 * 110.0;
            transitions.push((p(x, y + 5.0), p(x + 45.0, y + 35.0)));
        }
        (routes, transitions)
    }

    #[test]
    fn meta_codec_round_trips() {
        let (routes, transitions) = grid_world();
        let service = ShardedService::bulk_build(
            ShardedConfig::default().with_shards(3),
            routes,
            transitions,
        );
        let bytes = service.encode_meta();
        let meta = decode_meta(&bytes).expect("round trip");
        assert_eq!(meta.shards, 3);
        assert_eq!(meta.route_dir, service.route_dir);
        assert_eq!(meta.transition_dir, service.transition_dir);
        assert_eq!(meta.grid.bits(), service.grid.bits());
        assert_eq!(meta.grid.mbr(), service.grid.mbr());
    }

    #[test]
    fn decode_meta_rejects_damage() {
        let (routes, transitions) = grid_world();
        let service = ShardedService::bulk_build(ShardedConfig::default(), routes, transitions);
        let bytes = service.encode_meta();
        assert!(decode_meta(&[]).is_err(), "empty meta");
        let mut wrong_version = bytes.clone();
        wrong_version[0] = 99;
        assert!(decode_meta(&wrong_version).is_err(), "unknown version");
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 1);
        assert!(decode_meta(&truncated).is_err(), "truncated payload");
        let mut trailing = bytes;
        trailing.push(0);
        assert!(decode_meta(&trailing).is_err(), "trailing bytes");
    }

    #[test]
    fn directory_and_id_spaces_agree() {
        let (routes, transitions) = grid_world();
        let service = ShardedService::bulk_build(
            ShardedConfig::default().with_shards(4),
            routes,
            transitions,
        );
        for (gid, slot) in service.transition_dir.iter().enumerate() {
            let Slot::Held { shard, local, live } = slot else {
                panic!("bulk build of valid data leaves no vacant slots");
            };
            assert!(live);
            let space = &service.shards[*shard as usize].transition_l2g;
            assert_eq!(space.to_global(*local), Some(gid as u32));
            assert_eq!(space.to_local(gid as u32), Some(*local));
        }
        let total: usize = service
            .shards
            .iter()
            .map(|s| s.service.transitions().len())
            .sum();
        assert_eq!(total, service.transition_dir.len());
    }
}
