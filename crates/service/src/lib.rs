//! Concurrent batch RkNNT query serving — the layer that turns the paper's
//! single-threaded engines into a server-shaped system.
//!
//! The engines in `rknnt-core` answer one query at a time on one thread. A
//! deployment serving passenger-demand estimation for a live bus network
//! sees *streams* of queries with heavy spatial and exact repetition, plus a
//! store that mutates as transitions arrive and expire. This crate adds the
//! three mechanisms that workload needs, with a hard invariant — every
//! answer is byte-identical to sequential single-query execution:
//!
//! * **[`QueryService`]** — owns the [`rknnt_index::RouteStore`] /
//!   [`rknnt_index::TransitionStore`] pair behind an [`EnginePolicy`]
//!   (fixed engine, or a per-query heuristic on `k` and route length) and
//!   executes batches across a scoped worker pool
//!   ([`QueryService::execute_batch`]).
//! * **Shared-filter batching** — batch queries are grouped by engine,
//!   spatial cell and `k`; within a group, queries with the same
//!   `(route, k)` share one filter-set construction and exact duplicates
//!   are coalesced outright. [`BatchStats`] reports groups formed, filter
//!   constructions saved and wall-clock per phase.
//! * **Result caching** — a seeded-hash LRU cache keyed on
//!   `(route, k, semantics)` with an explicit
//!   [`QueryService::invalidate_all`] / generation-bump hook wired into
//!   [`QueryService::update_stores`], so dynamic-update workloads keep
//!   serving correct results.
//! * **Incremental updates** — [`QueryService::apply_updates`] mutates the
//!   owned stores in place ([`StoreUpdate`]: transitions arrive and expire,
//!   routes appear and are withdrawn) and evicts only the cached results an
//!   update could change: each entry records the region its filter step
//!   touched plus its result-endpoint MBR ([`region`]), so churn keeps the
//!   cache warm instead of dropping it wholesale.
//! * **Continuous queries** — [`QueryService::subscribe`] registers a
//!   standing query whose result the service keeps current across
//!   `apply_updates`: each update classifies every subscription as
//!   unaffected, certified stable or dirty (re-executed through the shared
//!   batch path), and result changes come back as per-batch
//!   [`SubscriptionDelta`]s instead of forcing clients to re-poll
//!   ([`monitor`]).
//! * **Durability** — [`QueryService::open`] /
//!   [`QueryService::attach_storage`] back the service with an
//!   `rknnt-storage` directory: `apply_updates` appends every update to a
//!   CRC-guarded write-ahead log before applying it ([`durable`] owns the
//!   record codec), [`QueryService::checkpoint`] folds the log into a
//!   checksummed snapshot, and reopening after a crash replays the WAL
//!   tail through the normal update path — recovered answers are
//!   byte-identical to the uninterrupted service
//!   (`tests/service_recovery.rs`).
//!
//! ```
//! use rknnt_core::RknntQuery;
//! use rknnt_geo::Point;
//! use rknnt_index::{RouteStore, TransitionStore};
//! use rknnt_service::{QueryService, ServiceConfig};
//!
//! let mut routes = RouteStore::default();
//! routes.insert_route(vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)]);
//! let mut transitions = TransitionStore::default();
//! transitions.insert(Point::new(10.0, 5.0), Point::new(90.0, 5.0)).unwrap();
//!
//! let service = QueryService::new(routes, transitions, ServiceConfig::default());
//! let query = RknntQuery::exists(vec![Point::new(0.0, 10.0), Point::new(100.0, 10.0)], 1);
//! let (results, stats) = service.execute_batch(std::slice::from_ref(&query));
//! assert_eq!(results.len(), 1);
//! assert_eq!(stats.queries, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod cache;
pub mod durable;
pub mod metrics;
pub mod monitor;
mod policy;
pub mod region;
mod service;
pub mod sharded;

pub use batch::{BatchPhaseTimings, BatchStats};
pub use cache::{CacheCounters, CacheKey, CacheStats, ResultCache};
pub use metrics::{RouterStats, ServiceMetrics};
pub use monitor::{DeltaReason, SubscriptionDelta, SubscriptionId};
pub use policy::EnginePolicy;
pub use region::EntryRegion;
pub use rknnt_storage::{StorageConfig, StorageError, StorageStats};
pub use service::{QueryService, ServiceConfig, StoreUpdate, UpdateStats};
pub use sharded::{ShardedConfig, ShardedService};
