//! The service's metric catalog: every counter, gauge, stage histogram and
//! the flight recorder, registered once per [`QueryService`] and threaded
//! through the pipeline as preallocated cells.
//!
//! Metric names are stable ids, grouped by layer:
//!
//! | prefix | what |
//! |---|---|
//! | `service.batch.*` | batch admission: queries, batches, groups, filter sharing, coalescing |
//! | `service.cache.*` | result-cache counters (hits, misses, evictions, …) |
//! | `service.stage.*_ns` | per-stage latency histograms: `cache_lookup`, `grouping`, `execution`, `finalize`, plus engine-reported `filter` / `verify` |
//! | `service.update.*` | update admission and eviction strategy counts |
//! | `service.subs.*` | subscription classification outcomes |
//! | `storage.wal.*` | WAL appends, bytes, and `fsync_ns` latency |
//! | `storage.checkpoint*` | checkpoint duration and the `checkpoint_stall_ns` high-water gauge |
//! | `router.*` | sharded routing: `fanout` histogram (shards consulted per fresh execution), `shards_pruned`, `dispatches`, `executions` |
//! | `shard.<i>.dispatches` | per-shard dispatch counters of one [`crate::ShardedService`] |
//!
//! The public stats structs ([`BatchStats`](crate::BatchStats),
//! [`UpdateStats`](crate::UpdateStats)) are populated by diffing cheap
//! fixed-size counter views around each call rather than by hand-threaded
//! field increments; the views are plain `u64` arrays of relaxed loads, so
//! the hot path never snapshots histograms or allocates.
//!
//! [`QueryService`]: crate::QueryService

use crate::cache::CacheCounters;
use rknnt_core::PhaseTimings;
use rknnt_obs::{
    Counter, EventKind, FlightRecorder, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, Stage,
};
use rknnt_storage::StorageInstruments;
use std::sync::Arc;

/// All metric cells of one [`crate::QueryService`], plus the registry that
/// exposes them and the flight recorder of recent pipeline events.
///
/// Obtained via [`crate::QueryService::metrics`]. Counters and gauges are
/// always live (the exact per-call stats depend on them); span timing,
/// histogram recording and flight-recorder events can be switched off with
/// [`ServiceMetrics::set_enabled`] — the `obs_overhead` bench experiment
/// holds their enabled cost to ≤5% of throughput.
#[derive(Debug)]
pub struct ServiceMetrics {
    registry: MetricsRegistry,
    recorder: Arc<FlightRecorder>,

    // Batch admission.
    pub(crate) queries: Counter,
    pub(crate) batches: Counter,
    pub(crate) groups: Counter,
    pub(crate) filter_constructions: Counter,
    pub(crate) filters_saved: Counter,
    pub(crate) duplicates_coalesced: Counter,

    // Result cache (shared cells with the cache itself).
    pub(crate) cache: CacheCounters,

    // Pipeline stages.
    pub(crate) stage_lookup: Stage,
    pub(crate) stage_grouping: Stage,
    pub(crate) stage_execution: Stage,
    pub(crate) stage_finalize: Stage,
    pub(crate) filter_ns: Arc<Histogram>,
    pub(crate) verify_ns: Arc<Histogram>,

    // Update path.
    pub(crate) update_applied: Counter,
    pub(crate) update_rejected: Counter,
    pub(crate) full_drops: Counter,
    pub(crate) targeted_route_removals: Counter,

    // Subscription classification.
    pub(crate) subs_unaffected: Counter,
    pub(crate) subs_stable: Counter,
    pub(crate) subs_dirty: Counter,
    pub(crate) subs_reexecuted: Counter,

    // Storage (incremented by the storage engine through
    // [`StorageInstruments`]).
    pub(crate) wal_appends: Counter,
    pub(crate) wal_bytes: Counter,
    wal_fsync: Stage,
    checkpoint: Stage,
    checkpoint_stall: Gauge,
}

impl ServiceMetrics {
    /// Registers the full catalog against a fresh registry with production
    /// (monotonic) telemetry.
    pub(crate) fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        let recorder = Arc::new(FlightRecorder::new(
            FlightRecorder::DEFAULT_CAPACITY,
            registry.telemetry().clone(),
        ));
        let cache = CacheCounters {
            hits: registry.counter("service.cache.hits"),
            misses: registry.counter("service.cache.misses"),
            insertions: registry.counter("service.cache.insertions"),
            evictions: registry.counter("service.cache.evictions"),
            invalidations: registry.counter("service.cache.invalidations"),
            targeted_evictions: registry.counter("service.cache.targeted_evictions"),
            invalidated_entries: registry.counter("service.cache.invalidated_entries"),
        };
        ServiceMetrics {
            queries: registry.counter("service.batch.queries"),
            batches: registry.counter("service.batch.count"),
            groups: registry.counter("service.batch.groups"),
            filter_constructions: registry.counter("service.batch.filter_constructions"),
            filters_saved: registry.counter("service.batch.filters_saved"),
            duplicates_coalesced: registry.counter("service.batch.duplicates_coalesced"),
            cache,
            stage_lookup: registry.stage("service.stage.cache_lookup_ns"),
            stage_grouping: registry.stage("service.stage.grouping_ns"),
            stage_execution: registry.stage("service.stage.execution_ns"),
            stage_finalize: registry.stage("service.stage.finalize_ns"),
            filter_ns: registry.histogram("service.stage.filter_ns"),
            verify_ns: registry.histogram("service.stage.verify_ns"),
            update_applied: registry.counter("service.update.applied"),
            update_rejected: registry.counter("service.update.rejected"),
            full_drops: registry.counter("service.update.full_drops"),
            targeted_route_removals: registry.counter("service.update.targeted_route_removals"),
            subs_unaffected: registry.counter("service.subs.unaffected"),
            subs_stable: registry.counter("service.subs.stable"),
            subs_dirty: registry.counter("service.subs.dirty"),
            subs_reexecuted: registry.counter("service.subs.reexecuted"),
            wal_appends: registry.counter("storage.wal.appends"),
            wal_bytes: registry.counter("storage.wal.bytes"),
            wal_fsync: registry.stage("storage.wal.fsync_ns"),
            checkpoint: registry.stage("storage.checkpoint_ns"),
            checkpoint_stall: registry.gauge("storage.checkpoint_stall_ns"),
            recorder,
            registry,
        }
    }

    /// Registers the single-service catalog *plus* the router-layer cells a
    /// [`crate::ShardedService`] adds on top: the fan-out histogram, prune
    /// and dispatch counters, and one `shard.<i>.dispatches` counter per
    /// shard. Shard counter names are interned for the process lifetime
    /// (the registry requires `&'static str` ids); a service holds at most
    /// one registration per shard index, and resharding rebuilds the whole
    /// catalog fresh, so the interned set stays bounded by the largest shard
    /// count ever used.
    pub(crate) fn new_with_router(shards: usize) -> (Self, RouterMetrics) {
        let mut metrics = Self::new();
        let router = RouterMetrics {
            fanout: metrics.registry.histogram("router.fanout"),
            shards_pruned: metrics.registry.counter("router.shards_pruned"),
            dispatches: metrics.registry.counter("router.dispatches"),
            executions: metrics.registry.counter("router.executions"),
            shard_dispatches: (0..shards)
                .map(|i| metrics.registry.counter(shard_counter_name(i)))
                .collect(),
        };
        (metrics, router)
    }

    /// The underlying registry (ids, individual cells, raw snapshots).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The flight recorder of recent pipeline events.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Whether timing instrumentation is live.
    pub fn enabled(&self) -> bool {
        self.registry.telemetry().enabled()
    }

    /// Turns span timing, histogram recording and flight-recorder events on
    /// or off. Counters and gauges stay live either way, so the exact
    /// per-call stats keep working.
    pub fn set_enabled(&self, on: bool) {
        self.registry.telemetry().set_enabled(on);
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// The current metrics in the text exposition format.
    pub fn render_text(&self) -> String {
        self.registry.render_text()
    }

    /// Records a flight-recorder event (dropped while disabled).
    #[inline]
    pub(crate) fn record_event(&self, kind: EventKind) {
        self.recorder.record(kind);
    }

    /// Feeds the engine-reported filtering/verification split of one fresh
    /// execution into the stage histograms. The engines already measure
    /// these phases for [`rknnt_core::RknntResult::timings`], so this costs
    /// no extra clock reads.
    #[inline]
    pub(crate) fn record_engine_timings(&self, timings: &PhaseTimings) {
        if self.registry.telemetry().enabled() {
            self.filter_ns.record_duration(timings.filtering);
            self.verify_ns.record_duration(timings.verification);
        }
    }

    /// The cells the storage engine increments, pre-bound to this registry.
    pub(crate) fn storage_instruments(&self) -> StorageInstruments {
        StorageInstruments {
            wal_appends: self.wal_appends.clone(),
            wal_bytes: self.wal_bytes.clone(),
            wal_fsync: self.wal_fsync.clone(),
            checkpoint: self.checkpoint.clone(),
            checkpoint_stall: self.checkpoint_stall.clone(),
            recorder: self.recorder.clone(),
        }
    }

    /// Relaxed loads of the counters [`crate::BatchStats`] is diffed from.
    #[inline]
    pub(crate) fn batch_view(&self) -> BatchCounterView {
        BatchCounterView {
            cache_hits: self.cache.hits.get(),
            filter_constructions: self.filter_constructions.get(),
            filters_saved: self.filters_saved.get(),
            duplicates_coalesced: self.duplicates_coalesced.get(),
        }
    }

    /// Relaxed loads of the counters [`crate::UpdateStats`] is diffed from.
    #[inline]
    pub(crate) fn update_view(&self) -> UpdateCounterView {
        UpdateCounterView {
            applied: self.update_applied.get(),
            rejected: self.update_rejected.get(),
            evicted_entries: self.cache.targeted_evictions.get()
                + self.cache.invalidated_entries.get(),
            full_drops: self.full_drops.get(),
            targeted_route_removals: self.targeted_route_removals.get(),
            subs_unaffected: self.subs_unaffected.get(),
            subs_stable: self.subs_stable.get(),
            subs_dirty: self.subs_dirty.get(),
            subs_reexecuted: self.subs_reexecuted.get(),
            wal_appends: self.wal_appends.get(),
            wal_bytes: self.wal_bytes.get(),
        }
    }
}

/// Router-layer metric cells of one [`crate::ShardedService`], registered
/// against the same registry as the router's service catalog. Each shard's
/// inner [`crate::QueryService`] keeps its own full catalog; these cells
/// describe the routing layer itself.
#[derive(Debug)]
pub(crate) struct RouterMetrics {
    /// Shards consulted per fresh (uncached, non-degenerate) execution.
    pub(crate) fanout: Arc<Histogram>,
    /// Shards skipped because the query's filter certified them
    /// candidate-free (or they were empty).
    pub(crate) shards_pruned: Counter,
    /// Total cross-shard dispatches.
    pub(crate) dispatches: Counter,
    /// Fresh executions routed (the fan-out histogram's count, mirrored as
    /// a counter so stats reads never touch histogram locks).
    pub(crate) executions: Counter,
    /// Per-shard dispatch counters, `shard.<i>.dispatches`.
    pub(crate) shard_dispatches: Vec<Counter>,
}

impl RouterMetrics {
    /// Relaxed-load snapshot of the routing counters.
    pub(crate) fn stats(&self) -> RouterStats {
        RouterStats {
            executions: self.executions.get(),
            dispatches: self.dispatches.get(),
            shards_pruned: self.shards_pruned.get(),
        }
    }
}

/// Interned `shard.<i>.dispatches` names: the registry requires `&'static`
/// ids, and a process may build sharded services repeatedly (tests,
/// resharding), so names are cached per index instead of leaked per call.
fn shard_counter_name(index: usize) -> &'static str {
    use std::sync::{Mutex, OnceLock};
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let names = NAMES.get_or_init(|| Mutex::new(Vec::new()));
    let mut names = names.lock().expect("shard name cache poisoned");
    while names.len() <= index {
        let i = names.len();
        names.push(Box::leak(format!("shard.{i}.dispatches").into_boxed_str()));
    }
    names[index]
}

/// Point-in-time routing counters of a [`crate::ShardedService`], read via
/// [`crate::ShardedService::router_stats`]. The mean fan-out —
/// `dispatches / executions` — is the sharding efficiency figure the
/// `shard_scaleout` bench gates on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Fresh (uncached, non-degenerate) executions routed.
    pub executions: u64,
    /// Cross-shard dispatches issued for those executions.
    pub dispatches: u64,
    /// Shard consultations avoided by the footprint certificate.
    pub shards_pruned: u64,
}

impl RouterStats {
    /// Mean shards consulted per fresh execution (0 when nothing ran).
    pub fn mean_fanout(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.dispatches as f64 / self.executions as f64
        }
    }
}

/// Counter readings taken before a batch executes; the readings afterwards
/// minus these are the batch's [`crate::BatchStats`] counts. (Two batches
/// running concurrently each see the union of what happened during their
/// own window — the global registry stays exact.)
#[derive(Debug, Clone, Copy)]
pub(crate) struct BatchCounterView {
    pub(crate) cache_hits: u64,
    pub(crate) filter_constructions: u64,
    pub(crate) filters_saved: u64,
    pub(crate) duplicates_coalesced: u64,
}

/// Counter readings taken before an update batch applies (updates hold
/// `&mut self`, so the window is exclusive and the diff exact).
#[derive(Debug, Clone, Copy)]
pub(crate) struct UpdateCounterView {
    pub(crate) applied: u64,
    pub(crate) rejected: u64,
    /// Targeted evictions + entries dropped by full invalidations.
    pub(crate) evicted_entries: u64,
    pub(crate) full_drops: u64,
    pub(crate) targeted_route_removals: u64,
    pub(crate) subs_unaffected: u64,
    pub(crate) subs_stable: u64,
    pub(crate) subs_dirty: u64,
    pub(crate) subs_reexecuted: u64,
    pub(crate) wal_appends: u64,
    pub(crate) wal_bytes: u64,
}
