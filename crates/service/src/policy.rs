//! Engine-selection policy: which engine answers which query.

use rknnt_core::{EngineKind, RknntQuery};
use std::fmt;
use std::str::FromStr;

/// Decides the [`EngineKind`] for each query in a batch.
///
/// All engines return identical transition sets (the workspace's central
/// correctness invariant), so the policy affects latency only — never
/// answers. That is what makes per-query selection safe in a serving path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnginePolicy {
    /// Always use one engine (benchmarks, determinism tests).
    Fixed(EngineKind),
    /// Pick per query from `k` and the route length, following the shape of
    /// the paper's evaluation (Figures 9–15):
    ///
    /// * single-point queries — Filter–Refine: the single-point filtering
    ///   space is already maximal, so Divide & Conquer's per-point machinery
    ///   buys nothing and the Voronoi step adds constant work;
    /// * large `k` (> 10) — Voronoi: verification dominates as `k` grows and
    ///   the enlarged pruned region cuts candidates the most;
    /// * otherwise — Divide & Conquer, the paper's best general performer on
    ///   multi-point queries.
    #[default]
    Auto,
}

impl EnginePolicy {
    /// The engine kind this policy assigns to `query`.
    pub fn choose(&self, query: &RknntQuery) -> EngineKind {
        match self {
            EnginePolicy::Fixed(kind) => *kind,
            EnginePolicy::Auto => {
                if query.route.len() <= 1 {
                    EngineKind::FilterRefine
                } else if query.k > 10 {
                    EngineKind::Voronoi
                } else {
                    EngineKind::DivideConquer
                }
            }
        }
    }
}

impl fmt::Display for EnginePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnginePolicy::Fixed(kind) => write!(f, "{kind}"),
            EnginePolicy::Auto => f.write_str("auto"),
        }
    }
}

impl FromStr for EnginePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("auto") {
            Ok(EnginePolicy::Auto)
        } else {
            s.parse::<EngineKind>().map(EnginePolicy::Fixed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_geo::Point;

    fn query(points: usize, k: usize) -> RknntQuery {
        RknntQuery::exists((0..points).map(|i| Point::new(i as f64, 0.0)).collect(), k)
    }

    #[test]
    fn fixed_policy_ignores_query_shape() {
        let policy = EnginePolicy::Fixed(EngineKind::BruteForce);
        assert_eq!(policy.choose(&query(1, 1)), EngineKind::BruteForce);
        assert_eq!(policy.choose(&query(10, 25)), EngineKind::BruteForce);
    }

    #[test]
    fn auto_policy_follows_the_heuristic() {
        let auto = EnginePolicy::Auto;
        assert_eq!(auto.choose(&query(1, 5)), EngineKind::FilterRefine);
        assert_eq!(auto.choose(&query(5, 25)), EngineKind::Voronoi);
        assert_eq!(auto.choose(&query(5, 5)), EngineKind::DivideConquer);
    }

    #[test]
    fn policy_parses_from_flags() {
        assert_eq!("auto".parse::<EnginePolicy>().unwrap(), EnginePolicy::Auto);
        assert_eq!(
            "voronoi".parse::<EnginePolicy>().unwrap(),
            EnginePolicy::Fixed(EngineKind::Voronoi)
        );
        assert!("fastest".parse::<EnginePolicy>().is_err());
        assert_eq!(EnginePolicy::Auto.to_string(), "auto");
        assert_eq!(
            EnginePolicy::Fixed(EngineKind::DivideConquer).to_string(),
            "divide-conquer"
        );
    }
}
