//! Batch formation and per-group execution: spatial grouping, shared-filter
//! reuse, duplicate coalescing and the [`BatchStats`] counters.

use crate::metrics::ServiceMetrics;
use crate::policy::EnginePolicy;
use rknnt_core::{
    EngineKind, FilterFootprint, FilterOutcome, FilterRefineEngine, QueryScratch, RknnTEngine,
    RknntQuery, RknntResult, Semantics,
};
use rknnt_geo::Point;
use rknnt_index::{RouteStore, TransitionStore};
use rknnt_obs::TraceCursor;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// Wall-clock spent in each phase of [`execute_batch`].
///
/// [`execute_batch`]: crate::QueryService::execute_batch
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchPhaseTimings {
    /// Result-cache lookups.
    pub lookup: Duration,
    /// Policy evaluation and spatial grouping.
    pub grouping: Duration,
    /// Query execution across the worker pool (wall-clock, not CPU-sum).
    pub execution: Duration,
    /// Result merging and cache insertion.
    pub finalize: Duration,
}

impl BatchPhaseTimings {
    /// Total wall-clock across all phases.
    pub fn total(&self) -> Duration {
        self.lookup + self.grouping + self.execution + self.finalize
    }
}

/// Work and reuse counters for one [`execute_batch`] call.
///
/// [`execute_batch`]: crate::QueryService::execute_batch
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Queries in the batch.
    pub queries: usize,
    /// Queries answered from the result cache.
    pub cache_hits: usize,
    /// Spatial groups formed from the cache misses.
    pub groups: usize,
    /// Filter sets actually constructed (Filter–Refine / Voronoi groups).
    pub filter_constructions: usize,
    /// Filter-set constructions avoided by sharing one construction across
    /// queries with the same `(route, k)` in a group.
    pub filters_saved: usize,
    /// Queries answered by cloning the result of an identical query
    /// (same route, `k` *and* semantics) earlier in the same group.
    pub duplicates_coalesced: usize,
    /// Worker threads the batch actually ran on.
    pub workers_used: usize,
    /// Per-phase wall-clock.
    pub timings: BatchPhaseTimings,
}

/// One cache-missing query travelling through grouping and execution,
/// remembering its position in the caller's batch.
pub(crate) struct Job<'q> {
    pub index: usize,
    pub query: &'q RknntQuery,
}

/// A unit of worker scheduling: queries assigned to the same engine whose
/// route centroids fall in the same spatial cell (and that share `k`, so
/// filter sets are potentially shareable).
pub(crate) struct Group<'q> {
    pub kind: EngineKind,
    pub jobs: Vec<Job<'q>>,
}

fn centroid(route: &[Point]) -> Point {
    if route.is_empty() {
        return Point::new(0.0, 0.0);
    }
    let (mut x, mut y) = (0.0, 0.0);
    for p in route {
        x += p.x;
        y += p.y;
    }
    let n = route.len() as f64;
    Point::new(x / n, y / n)
}

/// Partitions jobs into deterministic groups.
///
/// The key is `(engine, cell_x, cell_y, k)` where the cell quantises the
/// query route's centroid at `cell` metres. Nearby queries then land on the
/// same worker — they traverse the same RR-/TR-tree regions, so the group is
/// a locality unit — and within a group, queries sharing `(route, k)` reuse
/// one filter construction. Ordering is fully deterministic: groups are
/// emitted in key order and jobs keep batch order within their group, so
/// scheduling never depends on thread timing.
pub(crate) fn form_groups<'q>(
    queries: &'q [RknntQuery],
    miss_indexes: &[usize],
    policy: EnginePolicy,
    cell: f64,
) -> Vec<Group<'q>> {
    let cell = if cell.is_finite() && cell > 0.0 {
        cell
    } else {
        1.0
    };
    let mut buckets: BTreeMap<(EngineKind, i64, i64, usize), Vec<Job<'q>>> = BTreeMap::new();
    for &index in miss_indexes {
        let query = &queries[index];
        let kind = policy.choose(query);
        let c = centroid(&query.route);
        let key = (
            kind,
            (c.x / cell).floor() as i64,
            (c.y / cell).floor() as i64,
            query.k,
        );
        buckets.entry(key).or_default().push(Job { index, query });
    }
    buckets
        .into_iter()
        .map(|((kind, _, _, _), jobs)| Group { kind, jobs })
        .collect()
}

/// Exact-identity key for coalescing and filter sharing inside a group,
/// produced by [`crate::cache::route_bits`] — the same mapping the cache key
/// uses, so cache, coalescing and filter sharing can never disagree about
/// query identity.
type RouteBits = Vec<(u64, u64)>;

/// Engines a worker lazily constructs, one per [`EngineKind`] it encounters.
///
/// Filter–Refine and Voronoi get the concrete engine type so the worker can
/// split filter construction from execution; the other kinds go through the
/// trait object built by [`EngineKind::build`].
pub(crate) enum PreparedEngine<'a> {
    Shared(FilterRefineEngine<'a>),
    Plain(Box<dyn RknnTEngine + 'a>),
}

impl<'a> PreparedEngine<'a> {
    pub(crate) fn prepare(
        kind: EngineKind,
        routes: &'a RouteStore,
        transitions: &'a TransitionStore,
    ) -> Self {
        match kind {
            EngineKind::FilterRefine => {
                PreparedEngine::Shared(FilterRefineEngine::new(routes, transitions))
            }
            EngineKind::Voronoi => {
                PreparedEngine::Shared(FilterRefineEngine::with_voronoi(routes, transitions))
            }
            other => PreparedEngine::Plain(other.build(routes, transitions)),
        }
    }
}

/// One executed query leaving a group: its batch index, its result, and the
/// filter footprint the engine reported (shared per `(route, k)`; `None`
/// for degenerate queries and for engines that build no filter set).
pub(crate) type GroupOutput = (usize, RknntResult, Option<Arc<FilterFootprint>>);

/// Executes one group, appending [`GroupOutput`]s to `out`.
///
/// Results are byte-identical to running `engine.execute` per query: the
/// shared filter outcome is exactly what `execute` would build for the same
/// `(route, k)`, coalesced duplicates clone a result computed by the
/// identical pipeline, and the worker-owned `scratch` only recycles buffers
/// — the engines' scratch paths are property-tested byte-identical to their
/// allocating twins.
///
/// Work counters go straight to the registry cells in `metrics` (the caller
/// diffs them into [`BatchStats`]); each *fresh* execution also feeds the
/// engine-reported filtering/verification split into the stage histograms
/// (coalesced clones are skipped so no sample is counted twice).
pub(crate) fn run_group<'q>(
    engine: &PreparedEngine<'_>,
    group: &Group<'q>,
    scratch: &mut QueryScratch,
    out: &mut Vec<GroupOutput>,
    metrics: &ServiceMetrics,
    trace: Option<&TraceCursor>,
) {
    // Trace plumbing: one "group" span per group; fresh filter
    // constructions get a "filter_build" child each. All spans land in the
    // request's bounded slab — a huge batch overflows into the dropped
    // counter, never an allocation.
    let group_span = trace.map(|t| (t.clone(), t.begin("group")));
    let group_trace = group_span.as_ref().map(|(t, span)| t.at(*span));
    let mut filter_builds = 0u64;
    // (route, k, semantics) -> position in `out` of the first identical
    // query's result, for exact-duplicate coalescing.
    let mut seen: HashMap<(RouteBits, usize, Semantics), usize> = HashMap::new();
    // (route, k) -> shared filter outcome and its footprint (Filter–Refine /
    // Voronoi only). One construction also serves as the invalidation
    // footprint for every query sharing the pair.
    let mut filters: HashMap<(RouteBits, usize), (FilterOutcome, Arc<FilterFootprint>)> =
        HashMap::new();

    for job in &group.jobs {
        let bits = crate::cache::route_bits(&job.query.route);
        let full_key = (bits.clone(), job.query.k, job.query.semantics);
        if let Some(&first) = seen.get(&full_key) {
            let (_, result, footprint) = &out[first];
            let cloned = (job.index, result.clone(), footprint.clone());
            out.push(cloned);
            metrics.duplicates_coalesced.inc();
            continue;
        }
        let (result, footprint) = match engine {
            PreparedEngine::Shared(fr) => {
                if job.query.is_degenerate() {
                    (fr.execute(job.query), None)
                } else {
                    let filter_key = (bits, job.query.k);
                    let (outcome, footprint) = match filters.entry(filter_key) {
                        std::collections::hash_map::Entry::Occupied(entry) => {
                            metrics.filters_saved.inc();
                            entry.into_mut()
                        }
                        std::collections::hash_map::Entry::Vacant(entry) => {
                            metrics.filter_constructions.inc();
                            filter_builds += 1;
                            let span = group_trace.as_ref().map(|t| t.begin("filter_build"));
                            let outcome = fr.build_filter(job.query);
                            if let (Some(t), Some(span)) = (group_trace.as_ref(), span) {
                                t.end_with(span, &[("k", job.query.k as u64)]);
                            }
                            let footprint = Arc::new(fr.footprint_for(job.query, &outcome));
                            entry.insert((outcome, footprint))
                        }
                    };
                    (
                        fr.execute_with_filter_scratch(job.query, outcome, scratch),
                        Some(footprint.clone()),
                    )
                }
            }
            PreparedEngine::Plain(engine) => (engine.execute_scratch(job.query, scratch), None),
        };
        metrics.record_engine_timings(&result.timings);
        seen.insert(full_key, out.len());
        out.push((job.index, result, footprint));
    }
    if let Some((t, span)) = group_span {
        t.end_with(
            span,
            &[
                ("jobs", group.jobs.len() as u64),
                ("filter_builds", filter_builds),
            ],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(x: f64, y: f64, k: usize) -> RknntQuery {
        RknntQuery::exists(vec![Point::new(x, y), Point::new(x + 10.0, y)], k)
    }

    #[test]
    fn grouping_is_by_cell_k_and_engine() {
        let queries = vec![
            q(0.0, 0.0, 5),
            q(1.0, 1.0, 5),     // same cell, same k -> same group
            q(1.0, 1.0, 7),     // same cell, different k -> different group
            q(5_000.0, 0.0, 5), // far away -> different group
        ];
        let misses: Vec<usize> = (0..queries.len()).collect();
        let groups = form_groups(
            &queries,
            &misses,
            EnginePolicy::Fixed(EngineKind::FilterRefine),
            1_000.0,
        );
        assert_eq!(groups.len(), 3);
        let sizes: Vec<usize> = groups.iter().map(|g| g.jobs.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 4);
        assert!(sizes.contains(&2));
    }

    #[test]
    fn grouping_is_deterministic() {
        let queries: Vec<RknntQuery> = (0..40)
            .map(|i| q((i % 7) as f64 * 900.0, (i % 5) as f64 * 900.0, 1 + i % 3))
            .collect();
        let misses: Vec<usize> = (0..queries.len()).collect();
        let a = form_groups(&queries, &misses, EnginePolicy::Auto, 2_000.0);
        let b = form_groups(&queries, &misses, EnginePolicy::Auto, 2_000.0);
        let layout = |groups: &[Group]| -> Vec<(EngineKind, Vec<usize>)> {
            groups
                .iter()
                .map(|g| (g.kind, g.jobs.iter().map(|j| j.index).collect()))
                .collect()
        };
        assert_eq!(layout(&a), layout(&b));
    }

    #[test]
    fn nonpositive_cell_size_is_clamped() {
        let queries = vec![q(0.0, 0.0, 1), q(3.0, 0.0, 1)];
        let misses = vec![0, 1];
        for cell in [0.0, -5.0, f64::NAN] {
            let groups = form_groups(
                &queries,
                &misses,
                EnginePolicy::Fixed(EngineKind::BruteForce),
                cell,
            );
            assert_eq!(groups.iter().map(|g| g.jobs.len()).sum::<usize>(), 2);
        }
    }
}
