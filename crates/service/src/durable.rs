//! The WAL record codec for [`StoreUpdate`]s.
//!
//! The storage engine (`rknnt-storage`) treats WAL records as opaque bytes;
//! this module is where the service gives them shape. One record is one
//! update, tagged by a leading byte, with every field in the workspace's
//! little-endian codec ([`rknnt_data::codec`]). Decode is total over
//! hostile input: unknown tags, truncated fields and trailing bytes are
//! [`CodecError`]s, which recovery surfaces as typed corruption — a WAL
//! frame whose checksum passes but whose body does not parse was written by
//! a different (newer) service version or damaged in a checksum-colliding
//! way, and either deserves a loud stop.
//!
//! Replaying decoded updates through the normal
//! [`QueryService::apply_updates`] path reproduces the exact id assignment
//! of the original run: ids are dense slot indexes, snapshot restoration
//! preserves dead slots, and updates apply in sequence order.
//!
//! [`QueryService::apply_updates`]: crate::QueryService::apply_updates

use crate::service::StoreUpdate;
use rknnt_data::codec::{CodecError, Decoder, Encoder};
use rknnt_index::{RouteId, TransitionId};

/// Tag bytes, one per [`StoreUpdate`] variant. Part of the on-disk format:
/// append-only (never renumber).
const TAG_INSERT_TRANSITION: u8 = 0;
const TAG_EXPIRE_TRANSITION: u8 = 1;
const TAG_INSERT_ROUTE: u8 = 2;
const TAG_REMOVE_ROUTE: u8 = 3;

impl StoreUpdate {
    /// Encodes the update as one WAL record.
    pub fn to_wal_record(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            StoreUpdate::InsertTransition {
                origin,
                destination,
            } => {
                enc.u8(TAG_INSERT_TRANSITION);
                enc.point(origin);
                enc.point(destination);
            }
            StoreUpdate::ExpireTransition(id) => {
                enc.u8(TAG_EXPIRE_TRANSITION);
                enc.u32(id.raw());
            }
            StoreUpdate::InsertRoute(points) => {
                enc.u8(TAG_INSERT_ROUTE);
                enc.points(points);
            }
            StoreUpdate::RemoveRoute(id) => {
                enc.u8(TAG_REMOVE_ROUTE);
                enc.u32(id.raw());
            }
        }
        enc.into_bytes()
    }

    /// Decodes a WAL record written by [`StoreUpdate::to_wal_record`].
    pub fn from_wal_record(bytes: &[u8]) -> Result<StoreUpdate, CodecError> {
        let mut dec = Decoder::new(bytes);
        let update = match dec.u8()? {
            TAG_INSERT_TRANSITION => StoreUpdate::InsertTransition {
                origin: dec.point()?,
                destination: dec.point()?,
            },
            TAG_EXPIRE_TRANSITION => StoreUpdate::ExpireTransition(TransitionId(dec.u32()?)),
            TAG_INSERT_ROUTE => StoreUpdate::InsertRoute(dec.points()?),
            TAG_REMOVE_ROUTE => StoreUpdate::RemoveRoute(RouteId(dec.u32()?)),
            tag => {
                return Err(CodecError {
                    offset: 0,
                    detail: format!("unknown StoreUpdate tag {tag}"),
                })
            }
        };
        dec.expect_exhausted()?;
        Ok(update)
    }
}

/// Encodes a batch of updates as WAL records and reports the payload byte
/// total — the shared helper for the service-level append paths, whose
/// traced twins want the frame count and byte figure as span attributes.
pub(crate) fn wal_records(updates: &[StoreUpdate]) -> (Vec<Vec<u8>>, u64) {
    let records: Vec<Vec<u8>> = updates.iter().map(StoreUpdate::to_wal_record).collect();
    let bytes = records.iter().map(|r| r.len() as u64).sum();
    (records, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_geo::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn every_variant_roundtrips() {
        let updates = vec![
            StoreUpdate::InsertTransition {
                origin: p(1.5, -2.5),
                destination: p(1e9, 1e-9),
            },
            StoreUpdate::ExpireTransition(TransitionId(u32::MAX)),
            StoreUpdate::InsertRoute(vec![p(0.0, 0.0), p(3.0, 4.0), p(-5.0, 6.0)]),
            StoreUpdate::InsertRoute(Vec::new()), // degenerate but encodable
            StoreUpdate::RemoveRoute(RouteId(7)),
        ];
        for update in updates {
            let record = update.to_wal_record();
            let back = StoreUpdate::from_wal_record(&record).unwrap();
            assert_eq!(back, update);
            // Byte identity through a second round.
            assert_eq!(back.to_wal_record(), record);
        }
    }

    #[test]
    fn wal_records_reports_the_payload_byte_total() {
        let updates = vec![
            StoreUpdate::ExpireTransition(TransitionId(1)),
            StoreUpdate::RemoveRoute(RouteId(2)),
        ];
        let (records, bytes) = wal_records(&updates);
        assert_eq!(records.len(), 2);
        assert_eq!(bytes, records.iter().map(|r| r.len() as u64).sum::<u64>());
        assert!(bytes > 0);
    }

    #[test]
    fn hostile_records_fail_to_decode() {
        assert!(StoreUpdate::from_wal_record(&[]).is_err());
        assert!(StoreUpdate::from_wal_record(&[99]).is_err(), "unknown tag");
        // Truncated point.
        let mut record = StoreUpdate::InsertTransition {
            origin: p(1.0, 2.0),
            destination: p(3.0, 4.0),
        }
        .to_wal_record();
        record.truncate(record.len() - 1);
        assert!(StoreUpdate::from_wal_record(&record).is_err());
        // Trailing garbage.
        let mut record = StoreUpdate::RemoveRoute(RouteId(1)).to_wal_record();
        record.push(0);
        assert!(StoreUpdate::from_wal_record(&record).is_err());
    }
}
