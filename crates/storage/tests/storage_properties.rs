//! Property tests for the durable formats: arbitrary store pairs round-trip
//! byte-identically through the snapshot codec, and random single-byte
//! corruption or truncation of a snapshot or WAL segment is always detected
//! — with exactly one tolerated case, an incomplete (torn) final WAL frame,
//! which recovery reports and drops without losing any earlier record.

use proptest::prelude::*;
use rknnt_geo::Point;
use rknnt_index::{RouteStore, TransitionStore};
use rknnt_storage::snapshot::{encode_stores, read_snapshot, write_snapshot};
use rknnt_storage::wal::{scan_dir, Wal, WalConfig};
use std::path::PathBuf;

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

fn temp_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "rknnt-storprop-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Raw draws for one churned store pair: route point sequences, transition
/// endpoint pairs, and removal selectors that leave dead slots behind.
type RawStores = (
    Vec<Vec<(f64, f64)>>,
    Vec<((f64, f64), (f64, f64))>,
    Vec<u64>,
    Vec<u64>,
);

fn churned_stores_strategy() -> impl Strategy<Value = RawStores> {
    let coord = -500.0f64..500.0;
    let route = prop::collection::vec((coord.clone(), coord.clone()), 2..6);
    let pair = (
        (-500.0f64..500.0, -500.0f64..500.0),
        (-500.0f64..500.0, -500.0f64..500.0),
    );
    (
        prop::collection::vec(route, 1..8),
        prop::collection::vec(pair, 0..12),
        prop::collection::vec(0u64..u64::MAX, 0..4), // route removals
        prop::collection::vec(0u64..u64::MAX, 0..6), // transition removals
    )
}

fn build_stores(
    (routes_raw, pairs, route_kills, transition_kills): RawStores,
) -> (RouteStore, TransitionStore) {
    let mut routes = RouteStore::default();
    let mut route_ids = Vec::new();
    for points in routes_raw {
        if let Some(id) = routes.insert_route(points.iter().map(|&(x, y)| p(x, y)).collect()) {
            route_ids.push(id);
        }
    }
    let mut transitions = TransitionStore::default();
    let mut transition_ids = Vec::new();
    for ((ox, oy), (dx, dy)) in pairs {
        if let Some(id) = transitions.insert(p(ox, oy), p(dx, dy)) {
            transition_ids.push(id);
        }
    }
    for kill in route_kills {
        if !route_ids.is_empty() {
            let victim = route_ids.swap_remove(kill as usize % route_ids.len());
            routes.remove_route(victim);
        }
    }
    for kill in transition_kills {
        if !transition_ids.is_empty() {
            let victim = transition_ids.swap_remove(kill as usize % transition_ids.len());
            transitions.remove(victim);
        }
    }
    (routes, transitions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_store_pairs_roundtrip_byte_identically(raw in churned_stores_strategy()) {
        let (routes, transitions) = build_stores(raw);
        let payload = encode_stores(&routes, &transitions);
        let (r2, t2) = rknnt_storage::snapshot::decode_stores(&payload).unwrap();
        prop_assert_eq!(r2.export_state(), routes.export_state());
        prop_assert_eq!(t2.export_state(), transitions.export_state());
        prop_assert_eq!(encode_stores(&r2, &t2), payload);
        // And the reconstructed stores answer identically at the index
        // level: same live ids, same nearest stop for an arbitrary probe.
        prop_assert_eq!(r2.route_ids(), routes.route_ids());
        prop_assert_eq!(t2.transition_ids(), transitions.transition_ids());
        let probe = p(3.0, 4.0);
        let orig = routes.rtree().nearest(&probe).map(|n| n.distance);
        let back = r2.rtree().nearest(&probe).map(|n| n.distance);
        prop_assert_eq!(orig, back);
    }

    #[test]
    fn snapshot_single_byte_corruption_is_always_detected(
        raw in churned_stores_strategy(),
        victim in 0u64..u64::MAX,
        flip in 1u8..255,
    ) {
        let (routes, transitions) = build_stores(raw);
        let dir = temp_dir("snapcorrupt", victim ^ flip as u64);
        let path = dir.join("snapshot-x.snap");
        write_snapshot(&path, &routes, &transitions, 3).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        let mut bytes = pristine.clone();
        let at = (victim as usize) % bytes.len();
        bytes[at] ^= flip;
        std::fs::write(&path, &bytes).unwrap();
        let err = read_snapshot(&path).unwrap_err();
        prop_assert!(
            err.is_corruption(),
            "flip at {} must be detected, got {}", at, err
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_truncation_is_always_detected(
        raw in churned_stores_strategy(),
        cut in 0u64..u64::MAX,
    ) {
        let (routes, transitions) = build_stores(raw);
        let dir = temp_dir("snaptrunc", cut);
        let path = dir.join("snapshot-x.snap");
        write_snapshot(&path, &routes, &transitions, 3).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        let keep = (cut as usize) % pristine.len(); // strictly shorter
        std::fs::write(&path, &pristine[..keep]).unwrap();
        let err = read_snapshot(&path).unwrap_err();
        prop_assert!(err.is_corruption(), "truncation to {} bytes must be detected, got {}", keep, err);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_records_roundtrip_across_segment_rotation(
        records in prop::collection::vec(prop::collection::vec(0u8..255, 0..40), 1..20),
        segment_bytes in 32u64..256,
    ) {
        let dir = temp_dir("walround", segment_bytes ^ records.len() as u64);
        let mut wal = Wal::resume(&dir, WalConfig { segment_bytes, fsync: false }, 1, Vec::new());
        for chunk in records.chunks(3) {
            wal.append_batch(chunk).unwrap();
        }
        let scan = scan_dir(&dir).unwrap();
        prop_assert!(!scan.torn_tail);
        prop_assert_eq!(
            scan.frames.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
            records.clone()
        );
        let seqs: Vec<u64> = scan.frames.iter().map(|(s, _)| *s).collect();
        prop_assert_eq!(seqs, (1..=records.len() as u64).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_damage_is_detected_or_confined_to_the_torn_tail(
        records in prop::collection::vec(prop::collection::vec(0u8..255, 1..24), 2..12),
        victim in 0u64..u64::MAX,
        flip in 1u8..255,
        truncate in any::<bool>(),
    ) {
        // Single segment: every frame in one file, damage lands anywhere.
        let dir = temp_dir("waldamage", victim ^ (flip as u64) << 1);
        let mut wal = Wal::resume(&dir, WalConfig { segment_bytes: 1 << 20, fsync: false }, 1, Vec::new());
        wal.append_batch(&records).unwrap();
        let seg = scan_dir(&dir).unwrap().segments[0].0.clone();
        let pristine = std::fs::read(&seg).unwrap();
        // Byte offsets at which a frame ends (0 = before any frame): a
        // truncation exactly on one is indistinguishable from a log that
        // simply held fewer records, the one loss a pure log cannot see.
        let mut boundaries = vec![0usize];
        for record in &records {
            boundaries.push(boundaries.last().unwrap() + 8 + 8 + record.len());
        }
        let mut bytes = pristine.clone();
        let mut on_boundary = false;
        if truncate {
            let keep = (victim as usize) % bytes.len();
            on_boundary = boundaries.contains(&keep);
            bytes.truncate(keep);
        } else {
            let at = (victim as usize) % bytes.len();
            bytes[at] ^= flip;
        }
        std::fs::write(&seg, &bytes).unwrap();
        match scan_dir(&dir) {
            // Detected outright: checksum mismatch or structural corruption.
            Err(err) => prop_assert!(err.is_corruption(), "unexpected error class: {}", err),
            // Otherwise the damage must be confined to a torn tail: flagged
            // (unless the cut landed exactly on a frame boundary) and the
            // surviving frames an exact prefix of what was written — damage
            // can never invent, alter or reorder records.
            Ok(scan) => {
                prop_assert!(
                    scan.torn_tail || on_boundary,
                    "undetected damage with {} frames intact", scan.frames.len()
                );
                prop_assert!(scan.frames.len() < records.len());
                for (i, (seq, record)) in scan.frames.iter().enumerate() {
                    prop_assert_eq!(*seq, i as u64 + 1);
                    prop_assert_eq!(record, &records[i]);
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
