//! Deterministic fsync/write-failure injection at the WAL sync points.
//!
//! Pins the documented append-failure contract end to end:
//!
//! * a failed `write` or `fdatasync` fails the batch with a typed error and
//!   rolls the log back to its exact pre-batch state — the failed frames
//!   never existed, sequence numbering resumes without a gap, and a retry
//!   succeeds;
//! * recovery from the directory after a failed append is byte-identical to
//!   recovery from the pre-failure state;
//! * when rollback itself fails, the log poisons: every further append is a
//!   loud typed error, never a silent write behind partial frame bytes.

use rknnt_fault::FaultPlan;
use rknnt_storage::{Storage, StorageConfig, WAL_FSYNC_SITE, WAL_ROLLBACK_SITE, WAL_WRITE_SITE};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rknnt-fsyncfp-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config() -> StorageConfig {
    StorageConfig {
        fsync: true,
        ..StorageConfig::default()
    }
}

/// The recovered view of a directory: every WAL record past the snapshot,
/// in sequence order. Two directories in the same logical state must
/// produce byte-identical tails.
fn recovered_tail(dir: &Path) -> Vec<Vec<u8>> {
    let (_, recovery) = Storage::open(dir, config()).unwrap();
    recovery.tail
}

#[test]
fn injected_fsync_failure_rolls_back_and_a_retry_succeeds() {
    let dir = temp_dir("fsync-rollback");
    let (mut storage, _) = Storage::open(&dir, config()).unwrap();
    let fp = FaultPlan::new(11)
        .fail(WAL_FSYNC_SITE, 2, "injected fsync failure")
        .arm();
    storage.set_failpoints(fp.clone());

    storage.append(&[b"alpha".to_vec()]).unwrap();
    let before = recovered_tail(&dir);
    assert_eq!(before, vec![b"alpha".to_vec()]);
    let pre_stats = storage.stats();

    // Second append hits the armed fsync rule: typed error, nothing kept.
    let err = storage.append(&[b"beta".to_vec(), b"gamma".to_vec()]);
    let err = err.expect_err("injected fsync failure must surface");
    assert!(
        err.to_string().contains("injected fsync failure"),
        "error must carry the injected message: {err}"
    );
    assert_eq!(fp.injected(), 1);

    // Rollback contract: the directory recovers byte-identically to the
    // pre-failure state, and the handle's counters match.
    assert_eq!(recovered_tail(&dir), before);
    let stats = storage.stats();
    assert_eq!(stats.next_seq, pre_stats.next_seq, "seq must roll back");
    assert_eq!(stats.wal_bytes, pre_stats.wal_bytes);

    // The failed frames never existed: the retry reuses their sequence
    // numbers and lands with no gap.
    storage
        .append(&[b"beta".to_vec(), b"gamma".to_vec()])
        .unwrap();
    assert_eq!(
        recovered_tail(&dir),
        vec![b"alpha".to_vec(), b"beta".to_vec(), b"gamma".to_vec()]
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_write_failure_takes_the_same_rollback_path() {
    let dir = temp_dir("write-rollback");
    let (mut storage, _) = Storage::open(&dir, config()).unwrap();
    storage.set_failpoints(
        FaultPlan::new(5)
            .fail(WAL_WRITE_SITE, 1, "injected write failure")
            .arm(),
    );
    let err = storage.append(&[b"lost".to_vec()]).unwrap_err();
    assert!(err.to_string().contains("injected write failure"));
    assert!(recovered_tail(&dir).is_empty(), "nothing may survive");
    // Disarm path: the next append (rule consumed) commits cleanly.
    storage.append(&[b"kept".to_vec()]).unwrap();
    assert_eq!(recovered_tail(&dir), vec![b"kept".to_vec()]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_rollback_poisons_the_log_loudly() {
    let dir = temp_dir("poison");
    let (mut storage, _) = Storage::open(&dir, config()).unwrap();
    storage.set_failpoints(
        FaultPlan::new(7)
            .fail(WAL_FSYNC_SITE, 1, "injected fsync failure")
            .fail(WAL_ROLLBACK_SITE, 1, "injected rollback failure")
            .arm(),
    );
    let err = storage.append(&[b"doomed".to_vec()]).unwrap_err();
    assert!(err.to_string().contains("injected fsync failure"));
    // Rollback failed too: the log is poisoned, and every further append —
    // even a perfectly healthy one — errors loudly rather than risk
    // writing after partial frame bytes.
    for _ in 0..3 {
        let err = storage.append(&[b"after".to_vec()]).unwrap_err();
        assert!(
            err.to_string().contains("poisoned"),
            "poisoned log must refuse appends loudly: {err}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_after_failed_append_matches_a_never_failed_twin() {
    let twin_a = temp_dir("twin-clean");
    let twin_b = temp_dir("twin-faulted");
    let records: Vec<Vec<u8>> = (0u8..5).map(|i| vec![i; 9]).collect();

    // Twin A never fails.
    let (mut clean, _) = Storage::open(&twin_a, config()).unwrap();
    for r in &records {
        clean.append(std::slice::from_ref(r)).unwrap();
    }

    // Twin B suffers an injected fsync failure between records 2 and 3,
    // retries the failed batch, and finishes the same stream.
    let (mut faulted, _) = Storage::open(&twin_b, config()).unwrap();
    faulted.set_failpoints(
        FaultPlan::new(3)
            .fail(WAL_FSYNC_SITE, 3, "injected fsync failure")
            .arm(),
    );
    let mut failures = 0;
    for r in &records {
        if faulted.append(std::slice::from_ref(r)).is_err() {
            failures += 1;
            faulted.append(std::slice::from_ref(r)).unwrap(); // retry commits
        }
    }
    assert_eq!(failures, 1, "the scheduled failure must actually fire");

    // Both directories recover the identical record stream with identical
    // sequence numbering.
    assert_eq!(recovered_tail(&twin_a), recovered_tail(&twin_b));
    let (a, _) = Storage::open(&twin_a, config()).unwrap();
    let (b, _) = Storage::open(&twin_b, config()).unwrap();
    assert_eq!(a.stats().next_seq, b.stats().next_seq);
    let _ = std::fs::remove_dir_all(&twin_a);
    let _ = std::fs::remove_dir_all(&twin_b);
}
