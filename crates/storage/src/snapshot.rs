//! The versioned, checksummed binary snapshot format.
//!
//! A snapshot is one file holding the complete logical state of a
//! [`RouteStore`] + [`TransitionStore`] pair, exactly as exported by their
//! `export_state` methods — including the `None` slots of removed
//! routes/expired transitions (id assignment depends on slot count, and
//! replaying the WAL tail must assign the same ids the live service did).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic        8 bytes  "RKNTSNAP"
//! version      u32      1
//! last_seq     u64      highest WAL sequence number folded into the state
//! payload_len  u64      bytes of payload that follow the header
//! payload_crc  u32      CRC-32 (IEEE) of the payload
//! payload      payload_len bytes (route state, then transition state)
//! ```
//!
//! Writes go to a `.tmp` sibling, are fsynced, then renamed over the final
//! name (followed by a directory fsync), so a crash mid-write can never
//! leave a half-snapshot under a valid name. Reads verify magic, version,
//! length and checksum before decoding, and the decoder itself
//! bounds-checks every field — a corrupted snapshot is always a typed
//! [`StorageError`], never a panic or a silently wrong store.

use crate::error::StorageError;
use rknnt_data::codec::{crc32, CodecError, Decoder, Encoder};
use rknnt_index::{
    Route, RouteStore, RouteStoreState, StopId, Transition, TransitionStore, TransitionStoreState,
};
use rknnt_rtree::RTreeConfig;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"RKNTSNAP";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Fixed header size: magic + version + last_seq + payload_len + crc.
pub const SNAPSHOT_HEADER_BYTES: usize = 8 + 4 + 8 + 8 + 4;

// ---------------------------------------------------------------------------
// Store state codec
// ---------------------------------------------------------------------------

fn encode_rtree_config(enc: &mut Encoder, config: &RTreeConfig) {
    enc.len_prefix(config.max_entries);
    enc.len_prefix(config.min_entries);
}

fn decode_rtree_config(dec: &mut Decoder<'_>) -> Result<RTreeConfig, CodecError> {
    let max_entries = dec.usize()?;
    let min_entries = dec.usize()?;
    if max_entries < 4 || min_entries < 2 || min_entries > max_entries / 2 {
        return Err(CodecError {
            offset: dec.position(),
            detail: format!("invalid rtree config ({max_entries}, {min_entries})"),
        });
    }
    Ok(RTreeConfig::new(max_entries, min_entries))
}

/// Encodes a route-store state into `enc`.
pub fn encode_route_state(enc: &mut Encoder, state: &RouteStoreState) {
    encode_rtree_config(enc, &state.config);
    enc.len_prefix(state.routes.len());
    for slot in &state.routes {
        match slot {
            Some(route) => {
                enc.bool(true);
                enc.points(&route.points);
            }
            None => enc.bool(false),
        }
    }
    enc.points(&state.stops);
    enc.len_prefix(state.live_stops.len());
    for stop in &state.live_stops {
        enc.u32(stop.raw());
    }
    enc.len_prefix(state.plist.len());
    for list in &state.plist {
        enc.len_prefix(list.len());
        for route in list {
            enc.u32(route.raw());
        }
    }
}

/// Decodes a route-store state from `dec`.
pub fn decode_route_state(dec: &mut Decoder<'_>) -> Result<RouteStoreState, CodecError> {
    let config = decode_rtree_config(dec)?;
    let num_routes = dec.len_prefix(1)?;
    let mut routes = Vec::with_capacity(num_routes);
    for i in 0..num_routes {
        routes.push(if dec.bool()? {
            Some(Route {
                id: rknnt_index::RouteId(i as u32),
                points: dec.points()?,
            })
        } else {
            None
        });
    }
    let stops = dec.points()?;
    let num_live = dec.len_prefix(4)?;
    let mut live_stops = Vec::with_capacity(num_live);
    for _ in 0..num_live {
        live_stops.push(StopId(dec.u32()?));
    }
    let num_lists = dec.len_prefix(8)?;
    let mut plist = Vec::with_capacity(num_lists);
    for _ in 0..num_lists {
        let len = dec.len_prefix(4)?;
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            list.push(rknnt_index::RouteId(dec.u32()?));
        }
        plist.push(list);
    }
    Ok(RouteStoreState {
        config,
        routes,
        stops,
        live_stops,
        plist,
    })
}

/// Encodes a transition-store state into `enc`.
pub fn encode_transition_state(enc: &mut Encoder, state: &TransitionStoreState) {
    encode_rtree_config(enc, &state.config);
    enc.len_prefix(state.transitions.len());
    for slot in &state.transitions {
        match slot {
            Some(t) => {
                enc.bool(true);
                enc.point(&t.origin);
                enc.point(&t.destination);
            }
            None => enc.bool(false),
        }
    }
}

/// Decodes a transition-store state from `dec`.
pub fn decode_transition_state(dec: &mut Decoder<'_>) -> Result<TransitionStoreState, CodecError> {
    let config = decode_rtree_config(dec)?;
    let num = dec.len_prefix(1)?;
    let mut transitions = Vec::with_capacity(num);
    for i in 0..num {
        transitions.push(if dec.bool()? {
            Some(Transition::new(
                rknnt_index::TransitionId(i as u32),
                dec.point()?,
                dec.point()?,
            ))
        } else {
            None
        });
    }
    Ok(TransitionStoreState {
        config,
        transitions,
    })
}

/// Encodes the full store pair into a standalone payload (no header).
pub fn encode_stores(routes: &RouteStore, transitions: &TransitionStore) -> Vec<u8> {
    encode_stores_with_meta(routes, transitions, &[])
}

/// [`encode_stores`] plus an opaque, caller-defined metadata section.
///
/// The section is appended *after* the transition state, length-prefixed,
/// and only when non-empty — a payload without one decodes exactly as
/// before, so the snapshot format version stays unchanged and old snapshots
/// remain readable. The sharded service stores its routing directory
/// (grid geometry + per-id owner tables) here so the router's view of the
/// shards is crash-consistent with the planner state in the same file.
pub fn encode_stores_with_meta(
    routes: &RouteStore,
    transitions: &TransitionStore,
    meta: &[u8],
) -> Vec<u8> {
    let mut enc = Encoder::new();
    encode_route_state(&mut enc, &routes.export_state());
    encode_transition_state(&mut enc, &transitions.export_state());
    if !meta.is_empty() {
        enc.bytes(meta);
    }
    enc.into_bytes()
}

/// Decodes a store pair from a payload produced by [`encode_stores`],
/// discarding any metadata section.
pub fn decode_stores(payload: &[u8]) -> Result<(RouteStore, TransitionStore), String> {
    decode_stores_with_meta(payload).map(|(routes, transitions, _)| (routes, transitions))
}

/// Decodes a store pair plus the optional metadata section (empty when the
/// payload predates [`encode_stores_with_meta`] or none was written).
pub fn decode_stores_with_meta(
    payload: &[u8],
) -> Result<(RouteStore, TransitionStore, Vec<u8>), String> {
    let mut dec = Decoder::new(payload);
    let route_state = decode_route_state(&mut dec).map_err(|e| e.to_string())?;
    let transition_state = decode_transition_state(&mut dec).map_err(|e| e.to_string())?;
    let meta = if dec.is_exhausted() {
        Vec::new()
    } else {
        dec.bytes().map_err(|e| e.to_string())?.to_vec()
    };
    dec.expect_exhausted().map_err(|e| e.to_string())?;
    let routes = RouteStore::from_state(route_state)?;
    let transitions = TransitionStore::from_state(transition_state)?;
    Ok((routes, transitions, meta))
}

// ---------------------------------------------------------------------------
// Snapshot files
// ---------------------------------------------------------------------------

/// Fsyncs a directory so a just-renamed file survives power loss. Best
/// effort: some filesystems reject directory fsync, which is not worth
/// failing a checkpoint over.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(handle) = fs::File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// Writes a snapshot of the store pair to `path` (atomically, via a `.tmp`
/// sibling), recording `last_seq` as the highest WAL sequence number the
/// state includes. Returns the snapshot size in bytes.
pub fn write_snapshot(
    path: &Path,
    routes: &RouteStore,
    transitions: &TransitionStore,
    last_seq: u64,
) -> Result<u64, StorageError> {
    write_snapshot_with_meta(path, routes, transitions, last_seq, &[])
}

/// [`write_snapshot`] with an opaque metadata section (see
/// [`encode_stores_with_meta`]).
pub fn write_snapshot_with_meta(
    path: &Path,
    routes: &RouteStore,
    transitions: &TransitionStore,
    last_seq: u64,
    meta: &[u8],
) -> Result<u64, StorageError> {
    let payload = encode_stores_with_meta(routes, transitions, meta);
    let mut file_bytes = Vec::with_capacity(SNAPSHOT_HEADER_BYTES + payload.len());
    file_bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    file_bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    file_bytes.extend_from_slice(&last_seq.to_le_bytes());
    file_bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file_bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    file_bytes.extend_from_slice(&payload);

    let tmp = path.with_extension("tmp");
    let mut file =
        fs::File::create(&tmp).map_err(|e| StorageError::io("create snapshot", &tmp, e))?;
    file.write_all(&file_bytes)
        .map_err(|e| StorageError::io("write snapshot", &tmp, e))?;
    file.sync_all()
        .map_err(|e| StorageError::io("fsync snapshot", &tmp, e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| StorageError::io("rename snapshot", path, e))?;
    if let Some(dir) = path.parent() {
        sync_dir(dir);
    }
    Ok(file_bytes.len() as u64)
}

/// Reads and fully validates a snapshot file, returning the reconstructed
/// stores and the `last_seq` recorded in its header.
pub fn read_snapshot(path: &Path) -> Result<(RouteStore, TransitionStore, u64), StorageError> {
    read_snapshot_with_meta(path)
        .map(|(routes, transitions, last_seq, _)| (routes, transitions, last_seq))
}

/// [`read_snapshot`] returning the metadata section too (empty when the
/// snapshot carries none).
pub fn read_snapshot_with_meta(
    path: &Path,
) -> Result<(RouteStore, TransitionStore, u64, Vec<u8>), StorageError> {
    let bytes = fs::read(path).map_err(|e| StorageError::io("read snapshot", path, e))?;
    if bytes.len() < SNAPSHOT_HEADER_BYTES {
        return Err(StorageError::corrupt(
            path,
            Some(bytes.len() as u64),
            format!(
                "file is {} bytes, shorter than the {SNAPSHOT_HEADER_BYTES}-byte header",
                bytes.len()
            ),
        ));
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(StorageError::corrupt(path, Some(0), "bad magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(StorageError::UnsupportedVersion {
            path: path.to_path_buf(),
            version,
        });
    }
    let last_seq = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    let stored_crc = u32::from_le_bytes(bytes[28..32].try_into().expect("4 bytes"));
    let payload = &bytes[SNAPSHOT_HEADER_BYTES..];
    if payload.len() as u64 != payload_len {
        return Err(StorageError::corrupt(
            path,
            Some(20),
            format!(
                "header declares {payload_len} payload bytes, file holds {}",
                payload.len()
            ),
        ));
    }
    let computed = crc32(payload);
    if computed != stored_crc {
        return Err(StorageError::ChecksumMismatch {
            path: path.to_path_buf(),
            offset: SNAPSHOT_HEADER_BYTES as u64,
            stored: stored_crc,
            computed,
        });
    }
    let (routes, transitions, meta) = decode_stores_with_meta(payload)
        .map_err(|detail| StorageError::corrupt(path, None, detail))?;
    Ok((routes, transitions, last_seq, meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_geo::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn churned_stores() -> (RouteStore, TransitionStore) {
        let mut routes = RouteStore::default();
        let r0 = routes
            .insert_route(vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0)])
            .unwrap();
        routes
            .insert_route(vec![p(10.0, 0.0), p(10.0, 10.0)])
            .unwrap();
        routes
            .insert_route(vec![p(0.0, 5.0), p(20.0, 5.0)])
            .unwrap();
        routes.remove_route(r0); // leave a dead slot and a stale stop
        let mut transitions = TransitionStore::default();
        let t0 = transitions.insert(p(1.0, 1.0), p(9.0, 9.0)).unwrap();
        transitions.insert(p(2.0, 2.0), p(8.0, 8.0)).unwrap();
        transitions.remove(t0); // dead slot
        transitions.insert(p(3.0, 3.0), p(7.0, 7.0)).unwrap();
        (routes, transitions)
    }

    #[test]
    fn stores_roundtrip_byte_identically_through_the_payload_codec() {
        let (routes, transitions) = churned_stores();
        let payload = encode_stores(&routes, &transitions);
        let (r2, t2) = decode_stores(&payload).unwrap();
        assert_eq!(r2.export_state(), routes.export_state());
        assert_eq!(t2.export_state(), transitions.export_state());
        // Byte-identity: re-encoding the decoded stores reproduces the payload.
        assert_eq!(encode_stores(&r2, &t2), payload);
    }

    #[test]
    fn snapshot_file_roundtrips_and_records_last_seq() {
        let dir = std::env::temp_dir().join(format!("rknnt-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot-test.snap");
        let (routes, transitions) = churned_stores();
        let bytes = write_snapshot(&path, &routes, &transitions, 41).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        let (r2, t2, last_seq) = read_snapshot(&path).unwrap();
        assert_eq!(last_seq, 41);
        assert_eq!(r2.export_state(), routes.export_state());
        assert_eq!(t2.export_state(), transitions.export_state());
        assert!(
            !path.with_extension("tmp").exists(),
            "tmp file must be renamed away"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_magic_version_and_checksum_are_typed_errors() {
        let dir = std::env::temp_dir().join(format!("rknnt-snap-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot-bad.snap");
        let (routes, transitions) = churned_stores();
        write_snapshot(&path, &routes, &transitions, 7).unwrap();
        let pristine = std::fs::read(&path).unwrap();

        // Flip a payload byte: checksum mismatch.
        let mut bytes = pristine.clone();
        let tail = bytes.len() - 1;
        bytes[tail] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path).unwrap_err(),
            StorageError::ChecksumMismatch { .. }
        ));

        // Damage the magic.
        let mut bytes = pristine.clone();
        bytes[0] = b'X';
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path).unwrap_err(),
            StorageError::Corrupt { .. }
        ));

        // Bump the version.
        let mut bytes = pristine.clone();
        bytes[8] = 99;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path).unwrap_err(),
            StorageError::UnsupportedVersion { version: 99, .. }
        ));

        // Truncate the payload.
        std::fs::write(&path, &pristine[..pristine.len() - 5]).unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert!(err.is_corruption(), "truncation must be detected: {err}");

        // Truncate into the header.
        std::fs::write(&path, &pristine[..10]).unwrap();
        assert!(read_snapshot(&path).unwrap_err().is_corruption());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn meta_section_roundtrips_and_is_optional() {
        let (routes, transitions) = churned_stores();
        // Payload without meta decodes with an empty meta vector.
        let bare = encode_stores(&routes, &transitions);
        let (_, _, meta) = decode_stores_with_meta(&bare).unwrap();
        assert!(meta.is_empty());
        // Payload with meta round-trips byte-identically and stays readable
        // through the meta-unaware decoder.
        let tagged = encode_stores_with_meta(&routes, &transitions, b"router-directory");
        let (r2, t2, meta) = decode_stores_with_meta(&tagged).unwrap();
        assert_eq!(meta, b"router-directory");
        assert_eq!(r2.export_state(), routes.export_state());
        let (r3, t3) = decode_stores(&tagged).unwrap();
        assert_eq!(r3.export_state(), r2.export_state());
        assert_eq!(t3.export_state(), t2.export_state());

        let dir = std::env::temp_dir().join(format!("rknnt-snap-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot-meta.snap");
        write_snapshot_with_meta(&path, &routes, &transitions, 9, b"owners").unwrap();
        let (_, _, last_seq, meta) = read_snapshot_with_meta(&path).unwrap();
        assert_eq!(last_seq, 9);
        assert_eq!(meta, b"owners");
        // The meta-unaware reader still accepts the file.
        let (_, _, last_seq) = read_snapshot(&path).unwrap();
        assert_eq!(last_seq, 9);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_stores_snapshot_cleanly() {
        let dir = std::env::temp_dir().join(format!("rknnt-snap-empty-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot-empty.snap");
        let routes = RouteStore::default();
        let transitions = TransitionStore::default();
        write_snapshot(&path, &routes, &transitions, 0).unwrap();
        let (r2, t2, last_seq) = read_snapshot(&path).unwrap();
        assert_eq!(last_seq, 0);
        assert!(r2.is_empty());
        assert!(t2.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
