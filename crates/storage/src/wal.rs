//! The append-only write-ahead log: length-prefixed, CRC-guarded frames in
//! rotating segment files.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! crc      u32   CRC-32 of (len || payload)
//! len      u32   payload bytes that follow
//! payload  len bytes: seq u64, then the opaque record
//! ```
//!
//! The checksum covers the length field too, so a damaged length can never
//! silently re-frame the stream. Records are opaque bytes — the service
//! layer owns the `StoreUpdate` codec — and every record carries a strictly
//! increasing sequence number, which is what lets recovery skip frames a
//! snapshot already covers (and what makes an interrupted checkpoint
//! harmless: replay is idempotent by sequence, not by file set).
//!
//! Segments are named `wal-<first-seq>.log` (zero-padded, so lexicographic
//! order is numeric order). A batch append writes all its frames with one
//! `write(2)` and, when fsync is enabled, one `fdatasync` — the
//! fsync-on-commit batching the issue calls for. After recovery the log
//! never appends to an old segment: a fresh segment starts at the current
//! sequence, which keeps torn tails confined to where a crash actually
//! happened.
//!
//! **Torn tail vs corruption.** A frame whose bytes are incomplete (the
//! file ends mid-header or mid-payload) is a *torn tail*: legitimate after
//! a crash mid-append, tolerated only in the final segment, reported via
//! [`WalScan::torn_tail`], and the partial frame is dropped — then
//! physically truncated away by `Storage::open` ([`WalScan::torn_at`]), so
//! the repaired segment never strands garbage mid-log once newer segments
//! follow it. A frame whose bytes are all present but whose checksum fails
//! is *corruption* and is always a typed error — as is any incomplete
//! frame in a non-final segment, which no single crash can produce.

use crate::error::StorageError;
use rknnt_data::codec::crc32;
use rknnt_fault::{Failpoints, FaultAction};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Frame header bytes: crc (u32) + len (u32).
const FRAME_HEADER_BYTES: usize = 8;

/// Tuning for the write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Rotate to a new segment once the active one reaches this size.
    pub segment_bytes: u64,
    /// Whether to `fdatasync` after every append batch. Disable only for
    /// tests and benchmarks that measure codec cost, not durability.
    pub fsync: bool,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_bytes: 4 * 1024 * 1024,
            fsync: true,
        }
    }
}

/// Segment file name for a segment whose first frame is `first_seq`.
fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

/// Whether `name` looks like a WAL segment file.
pub(crate) fn is_segment_name(name: &str) -> bool {
    name.starts_with("wal-") && name.ends_with(".log")
}

/// Result of scanning every segment in a directory.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Every intact frame, in order: `(seq, record bytes)`.
    pub frames: Vec<(u64, Vec<u8>)>,
    /// Whether the final segment ended in an incomplete frame (dropped).
    pub torn_tail: bool,
    /// When torn, the byte length of the final segment's valid prefix —
    /// what the file must be truncated to before any further append, or
    /// the torn bytes would end up mid-log and turn into hard corruption
    /// on the next scan.
    pub torn_at: Option<u64>,
    /// Segment files found, ascending, with their sizes.
    pub segments: Vec<(PathBuf, u64)>,
    /// Highest sequence number seen (0 when no frames).
    pub max_seq: u64,
}

/// Scans every `wal-*.log` segment under `dir`, validating frame checksums
/// and sequence monotonicity. See the module docs for the torn-tail rules.
pub fn scan_dir(dir: &Path) -> Result<WalScan, StorageError> {
    let mut names: Vec<String> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| StorageError::io("list WAL dir", dir, e))?;
    for entry in entries {
        let entry = entry.map_err(|e| StorageError::io("list WAL dir", dir, e))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if is_segment_name(&name) {
            names.push(name);
        }
    }
    names.sort(); // zero-padded, so lexicographic == numeric
    let mut scan = WalScan::default();
    let last_index = names.len().saturating_sub(1);
    for (i, name) in names.iter().enumerate() {
        let path = dir.join(name);
        let bytes = fs::read(&path).map_err(|e| StorageError::io("read WAL segment", &path, e))?;
        scan.segments.push((path.clone(), bytes.len() as u64));
        let is_last = i == last_index;
        let mut offset = 0usize;
        while offset < bytes.len() {
            let remaining = bytes.len() - offset;
            // Incomplete header?
            if remaining < FRAME_HEADER_BYTES {
                if is_last {
                    scan.torn_tail = true;
                    scan.torn_at = Some(offset as u64);
                    break;
                }
                return Err(StorageError::corrupt(
                    &path,
                    Some(offset as u64),
                    "segment truncated mid-header before the final segment",
                ));
            }
            let stored_crc = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4"));
            let len =
                u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4")) as usize;
            // Incomplete payload?
            if remaining - FRAME_HEADER_BYTES < len {
                if is_last {
                    scan.torn_tail = true;
                    scan.torn_at = Some(offset as u64);
                    break;
                }
                return Err(StorageError::corrupt(
                    &path,
                    Some(offset as u64),
                    "segment truncated mid-frame before the final segment",
                ));
            }
            let guarded = &bytes[offset + 4..offset + FRAME_HEADER_BYTES + len];
            let computed = crc32(guarded);
            if computed != stored_crc {
                return Err(StorageError::ChecksumMismatch {
                    path: path.clone(),
                    offset: offset as u64,
                    stored: stored_crc,
                    computed,
                });
            }
            let payload = &bytes[offset + FRAME_HEADER_BYTES..offset + FRAME_HEADER_BYTES + len];
            if payload.len() < 8 {
                return Err(StorageError::corrupt(
                    &path,
                    Some(offset as u64),
                    format!(
                        "frame payload is {} bytes, too short for a sequence",
                        payload.len()
                    ),
                ));
            }
            let seq = u64::from_le_bytes(payload[..8].try_into().expect("8"));
            if seq <= scan.max_seq {
                return Err(StorageError::corrupt(
                    &path,
                    Some(offset as u64),
                    format!("sequence {seq} not above previous {}", scan.max_seq),
                ));
            }
            scan.max_seq = seq;
            scan.frames.push((seq, payload[8..].to_vec()));
            offset += FRAME_HEADER_BYTES + len;
        }
    }
    Ok(scan)
}

/// The write-ahead log: an active segment plus the closed segments a future
/// checkpoint will truncate.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    active: Option<fs::File>,
    active_path: Option<PathBuf>,
    active_bytes: u64,
    closed: Vec<PathBuf>,
    closed_bytes: u64,
    next_seq: u64,
    appends: u64,
    /// Set when a failed append could not be rolled back: the active
    /// segment may end in partial frame bytes, and writing anything after
    /// them would make the whole directory unrecoverable. Every further
    /// append fails loudly instead.
    poisoned: bool,
    /// Armed fault plan, consulted at the append sync points
    /// ([`WAL_WRITE_SITE`], [`WAL_FSYNC_SITE`], [`WAL_ROLLBACK_SITE`]).
    failpoints: Option<Arc<Failpoints>>,
}

/// Failpoint site hit before the batched `write(2)` of an append.
pub const WAL_WRITE_SITE: &str = "storage.wal.write";
/// Failpoint site hit before the `fdatasync` of an append (fsync on).
pub const WAL_FSYNC_SITE: &str = "storage.wal.fsync";
/// Failpoint site hit inside rollback — a `Fail` here forces the
/// could-not-roll-back path, poisoning the log.
pub const WAL_ROLLBACK_SITE: &str = "storage.wal.rollback";

impl Wal {
    /// Resumes a log in `dir`: `next_seq` is the first sequence number to
    /// assign and `existing` the segment files recovery scanned (they stay
    /// on disk until a checkpoint truncates them; appends go to a fresh
    /// segment).
    pub fn resume(
        dir: &Path,
        config: WalConfig,
        next_seq: u64,
        existing: Vec<(PathBuf, u64)>,
    ) -> Self {
        let closed_bytes = existing.iter().map(|(_, b)| *b).sum();
        Wal {
            dir: dir.to_path_buf(),
            config,
            active: None,
            active_path: None,
            active_bytes: 0,
            closed: existing.into_iter().map(|(p, _)| p).collect(),
            closed_bytes,
            next_seq: next_seq.max(1),
            appends: 0,
            poisoned: false,
            failpoints: None,
        }
    }

    /// Arms a fault plan on this log's sync points. Only
    /// [`FaultAction::Fail`] is meaningful here; other actions are ignored.
    pub fn set_failpoints(&mut self, failpoints: Arc<Failpoints>) {
        self.failpoints = Some(failpoints);
    }

    /// Consults the armed plan at `site`, returning the injected failure
    /// message if a `Fail` rule fires.
    fn injected_failure(&self, site: &str) -> Option<String> {
        match self.failpoints.as_ref()?.hit(site) {
            Some(FaultAction::Fail { message }) => Some(message),
            _ => None,
        }
    }

    /// The next sequence number an append will consume.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Segment files currently on disk (closed plus active).
    pub fn segments(&self) -> usize {
        self.closed.len() + usize::from(self.active.is_some())
    }

    /// Total WAL bytes currently on disk.
    pub fn bytes(&self) -> u64 {
        self.closed_bytes + self.active_bytes
    }

    /// Frames appended through this handle (not counting recovered ones).
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Opens the active segment if none is open, naming it after
    /// `first_seq` — the sequence of the first frame it will hold, which
    /// must be captured *before* frame building advances `next_seq`.
    fn open_active(&mut self, first_seq: u64) -> Result<(), StorageError> {
        if self.active.is_none() {
            let path = self.dir.join(segment_name(first_seq));
            let file = fs::OpenOptions::new()
                .create_new(true)
                .write(true)
                .open(&path)
                .map_err(|e| StorageError::io("create WAL segment", &path, e))?;
            crate::snapshot::sync_dir(&self.dir);
            self.active = Some(file);
            self.active_path = Some(path);
            self.active_bytes = 0;
        }
        Ok(())
    }

    /// Appends a batch of records as one write (and, when fsync is on, one
    /// `fdatasync` — commit batching). Returns `(frames, bytes)` appended.
    /// An empty batch is a no-op that touches no file.
    ///
    /// A failed write or fsync rolls the active segment back to its
    /// pre-batch length (and `next_seq` to its pre-batch value), so a
    /// retried or abandoned batch never leaves partial frame bytes for
    /// later frames to land behind. When even the rollback fails the log
    /// poisons itself: every further append errors rather than risk
    /// writing after garbage.
    pub fn append_batch<R: AsRef<[u8]>>(
        &mut self,
        records: &[R],
    ) -> Result<(u64, u64), StorageError> {
        if records.is_empty() {
            return Ok((0, 0));
        }
        if self.poisoned {
            let path = self.active_path.clone().unwrap_or_else(|| self.dir.clone());
            return Err(StorageError::io(
                "append to poisoned WAL (an earlier failed write could not be rolled back)",
                path,
                std::io::Error::other("WAL poisoned"),
            ));
        }
        let first_seq = self.next_seq;
        self.open_active(first_seq)?;
        let mut buf = Vec::new();
        for record in records {
            let record = record.as_ref();
            let len = (8 + record.len()) as u32;
            let mut guarded = Vec::with_capacity(4 + 8 + record.len());
            guarded.extend_from_slice(&len.to_le_bytes());
            guarded.extend_from_slice(&self.next_seq.to_le_bytes());
            guarded.extend_from_slice(record);
            buf.extend_from_slice(&crc32(&guarded).to_le_bytes());
            buf.extend_from_slice(&guarded);
            self.next_seq += 1;
        }
        let fsync = self.config.fsync;
        // Fault decisions land *before* the file borrow: an injected write
        // failure takes the same rollback path a real one would, and an
        // injected fsync failure fails the batch after the bytes hit the
        // page cache — the classic lost-durability crash signature.
        let fail_write = self.injected_failure(WAL_WRITE_SITE);
        let fail_fsync = if fsync {
            self.injected_failure(WAL_FSYNC_SITE)
        } else {
            None
        };
        let path = self
            .active_path
            .clone()
            .expect("active path set with active file");
        let file = self.active.as_mut().expect("active file just opened");
        let committed = match fail_write {
            Some(message) => Err(StorageError::io(
                "append WAL frames",
                &path,
                std::io::Error::other(message),
            )),
            None => file
                .write_all(&buf)
                .map_err(|e| StorageError::io("append WAL frames", &path, e)),
        }
        .and_then(|()| {
            if !fsync {
                return Ok(());
            }
            if let Some(message) = fail_fsync {
                return Err(StorageError::io(
                    "fsync WAL segment",
                    &path,
                    std::io::Error::other(message),
                ));
            }
            file.sync_data()
                .map_err(|e| StorageError::io("fsync WAL segment", &path, e))
        });
        if let Err(err) = committed {
            self.rollback_failed_append(first_seq);
            return Err(err);
        }
        self.active_bytes += buf.len() as u64;
        self.appends += records.len() as u64;
        if self.active_bytes >= self.config.segment_bytes {
            self.rotate()?;
        }
        Ok((records.len() as u64, buf.len() as u64))
    }

    /// Restores the active segment to its pre-batch state after a failed
    /// write: truncate back to the known-good length and reposition the
    /// cursor. On success `next_seq` rolls back too (the failed frames
    /// never existed); on failure the log is poisoned.
    fn rollback_failed_append(&mut self, first_seq: u64) {
        use std::io::Seek;
        if self.injected_failure(WAL_ROLLBACK_SITE).is_some() {
            self.poisoned = true;
            return;
        }
        let restored = (|| -> std::io::Result<()> {
            let file = self
                .active
                .as_mut()
                .ok_or_else(|| std::io::Error::other("no active segment"))?;
            file.set_len(self.active_bytes)?;
            file.seek(std::io::SeekFrom::Start(self.active_bytes))?;
            Ok(())
        })();
        match restored {
            Ok(()) => self.next_seq = first_seq,
            Err(_) => self.poisoned = true,
        }
    }

    /// Closes the active segment; the next append starts a new one.
    fn rotate(&mut self) -> Result<(), StorageError> {
        if let (Some(file), Some(path)) = (self.active.take(), self.active_path.take()) {
            file.sync_all()
                .map_err(|e| StorageError::io("fsync rotated segment", &path, e))?;
            self.closed.push(path);
            self.closed_bytes += self.active_bytes;
            self.active_bytes = 0;
        }
        Ok(())
    }

    /// Deletes every segment — called by checkpoint once a snapshot covers
    /// all appended frames. Sequence numbering continues; only the files
    /// go.
    pub fn truncate_all(&mut self) -> Result<(), StorageError> {
        self.rotate()?;
        for path in self.closed.drain(..) {
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(StorageError::io("truncate WAL segment", &path, e)),
            }
        }
        self.closed_bytes = 0;
        crate::snapshot::sync_dir(&self.dir);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rknnt-wal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn no_fsync(segment_bytes: u64) -> WalConfig {
        WalConfig {
            segment_bytes,
            fsync: false,
        }
    }

    #[test]
    fn append_scan_roundtrip_with_rotation() {
        let dir = temp_dir("roundtrip");
        let mut wal = Wal::resume(&dir, no_fsync(64), 1, Vec::new());
        let records: Vec<Vec<u8>> = (0u8..10).map(|i| vec![i; 7]).collect();
        for chunk in records.chunks(3) {
            wal.append_batch(chunk).unwrap();
        }
        assert!(wal.segments() >= 2, "tiny segment size must rotate");
        assert_eq!(wal.appends(), 10);
        let scan = scan_dir(&dir).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(scan.max_seq, 10);
        assert_eq!(
            scan.frames
                .iter()
                .map(|(_, r)| r.clone())
                .collect::<Vec<_>>(),
            records
        );
        assert_eq!(
            scan.frames.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            (1..=10).collect::<Vec<u64>>()
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_batch_touches_nothing() {
        let dir = temp_dir("empty");
        let mut wal = Wal::resume(&dir, no_fsync(1024), 1, Vec::new());
        assert_eq!(wal.append_batch::<Vec<u8>>(&[]).unwrap(), (0, 0));
        assert_eq!(wal.segments(), 0);
        assert!(scan_dir(&dir).unwrap().frames.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_final_frame_is_a_tolerated_torn_tail() {
        let dir = temp_dir("torn");
        let mut wal = Wal::resume(&dir, no_fsync(1 << 20), 1, Vec::new());
        wal.append_batch(&[b"alpha".to_vec(), b"beta".to_vec()])
            .unwrap();
        let seg = scan_dir(&dir).unwrap().segments[0].0.clone();
        let bytes = fs::read(&seg).unwrap();
        // Cut into the middle of the second frame.
        fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
        let scan = scan_dir(&dir).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.frames[0].1, b"alpha");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_before_the_final_segment_is_corruption() {
        let dir = temp_dir("midlog");
        let mut wal = Wal::resume(&dir, no_fsync(32), 1, Vec::new());
        for i in 0u8..6 {
            wal.append_batch(&[vec![i; 20]]).unwrap();
        }
        let scan = scan_dir(&dir).unwrap();
        assert!(scan.segments.len() >= 2);
        let first = scan.segments[0].0.clone();
        let bytes = fs::read(&first).unwrap();
        fs::write(&first, &bytes[..bytes.len() - 3]).unwrap();
        let err = scan_dir(&dir).unwrap_err();
        assert!(err.is_corruption(), "mid-log truncation must error: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_bytes_fail_the_frame_checksum() {
        let dir = temp_dir("flip");
        let mut wal = Wal::resume(&dir, no_fsync(1 << 20), 1, Vec::new());
        wal.append_batch(&[b"payload-one".to_vec(), b"payload-two".to_vec()])
            .unwrap();
        let seg = scan_dir(&dir).unwrap().segments[0].0.clone();
        let pristine = fs::read(&seg).unwrap();
        // Flip a byte inside the *first* frame's payload: always corruption.
        let mut bytes = pristine.clone();
        bytes[FRAME_HEADER_BYTES + 8] ^= 0x40;
        fs::write(&seg, &bytes).unwrap();
        assert!(matches!(
            scan_dir(&dir).unwrap_err(),
            StorageError::ChecksumMismatch { .. }
        ));
        // Flip a byte in the first frame's length field: the checksum covers
        // the length too, so re-framing cannot slip through.
        let mut bytes = pristine;
        bytes[4] ^= 0x01;
        fs::write(&seg, &bytes).unwrap();
        let err = scan_dir(&dir).unwrap_err();
        assert!(err.is_corruption(), "length damage must be detected: {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_appends_to_a_fresh_segment_and_truncate_clears_all() {
        let dir = temp_dir("resume");
        let mut wal = Wal::resume(&dir, no_fsync(1 << 20), 1, Vec::new());
        wal.append_batch(&[b"one".to_vec()]).unwrap();
        drop(wal);
        let scan = scan_dir(&dir).unwrap();
        let mut wal = Wal::resume(&dir, no_fsync(1 << 20), scan.max_seq + 1, scan.segments);
        wal.append_batch(&[b"two".to_vec()]).unwrap();
        assert_eq!(wal.segments(), 2, "resume must not reopen the old segment");
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.frames[1], (2, b"two".to_vec()));
        wal.truncate_all().unwrap();
        assert_eq!(wal.segments(), 0);
        assert_eq!(wal.bytes(), 0);
        assert!(scan_dir(&dir).unwrap().frames.is_empty());
        // Sequence numbering continues after truncation.
        wal.append_batch(&[b"three".to_vec()]).unwrap();
        let scan = scan_dir(&dir).unwrap();
        assert_eq!(scan.frames, vec![(3, b"three".to_vec())]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
