//! Durable storage engine for the RkNNT service: checkpointed snapshots
//! plus a write-ahead log of store updates, with crash recovery.
//!
//! Everything upstream of this crate keeps the whole service state in
//! memory; a restart used to mean regenerating raw data and rebuilding
//! every index. This crate makes the update stream itself the system of
//! record, following the classic log-plus-snapshot design:
//!
//! * **Snapshots** ([`snapshot`]) — one versioned, checksummed binary file
//!   holding the complete logical state of a
//!   [`rknnt_index::RouteStore`] + [`rknnt_index::TransitionStore`] pair,
//!   hand-encoded through [`rknnt_data::codec`] (the workspace is hermetic:
//!   no serde backend). Round-trips are byte-identical and `.tmp`+rename
//!   makes writes atomic.
//! * **Write-ahead log** ([`wal`]) — length-prefixed, CRC-guarded frames in
//!   rotating `wal-*.log` segments. Records are opaque bytes (the service
//!   owns the `StoreUpdate` codec); each carries a strictly increasing
//!   sequence number. Batches commit with a single write + fdatasync.
//! * **Recovery** ([`Storage::open`]) — loads the newest *valid* snapshot,
//!   returns the WAL records its sequence does not cover for the service to
//!   replay through its normal update path, tolerates a torn final frame
//!   (a crash mid-append) and surfaces every other form of damage as a
//!   typed [`StorageError`].
//! * **Checkpoint** ([`Storage::checkpoint`]) — writes a new snapshot
//!   covering every appended record, deletes the obsolete segments and
//!   older snapshots, and reports [`StorageStats`].
//!
//! The crate is deliberately service-agnostic: it stores and recovers the
//! *stores* plus opaque update records. `rknnt-service` layers
//! `QueryService::open` / `attach_storage` / `checkpoint` on top, where
//! replay can run through `apply_updates` so caches and subscriptions come
//! up consistent for free.
//!
//! One writer per directory is assumed (the service serialises mutation
//! through `&mut self`); there is no cross-process lock file.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod snapshot;
pub mod wal;

pub use error::StorageError;
pub use wal::{WalConfig, WAL_FSYNC_SITE, WAL_ROLLBACK_SITE, WAL_WRITE_SITE};

use rknnt_index::{RouteStore, TransitionStore};
use rknnt_obs::{Counter, EventKind, FlightRecorder, Gauge, Span, Stage};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use wal::Wal;

/// Tuning for a storage directory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageConfig {
    /// Rotate WAL segments at this size.
    pub segment_bytes: u64,
    /// `fdatasync` every append batch and snapshot. Disable only where
    /// durability is not the point (tests, throughput measurements).
    pub fsync: bool,
}

impl Default for StorageConfig {
    fn default() -> Self {
        let wal = WalConfig::default();
        StorageConfig {
            segment_bytes: wal.segment_bytes,
            fsync: wal.fsync,
        }
    }
}

impl StorageConfig {
    /// Fixes the segment rotation size.
    pub fn with_segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes;
        self
    }

    /// Enables or disables fsync-on-commit.
    pub fn with_fsync(mut self, fsync: bool) -> Self {
        self.fsync = fsync;
        self
    }
}

/// Counters describing a storage directory's state, reported by
/// [`Storage::stats`] and [`Storage::checkpoint`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// WAL segment files currently on disk.
    pub segments: usize,
    /// Total WAL bytes currently on disk.
    pub wal_bytes: u64,
    /// Frames appended through this handle since it was opened.
    pub wal_appends: u64,
    /// Size of the latest snapshot, in bytes (0 when none exists).
    pub snapshot_bytes: u64,
    /// Highest WAL sequence the latest snapshot covers (0 when none).
    pub snapshot_last_seq: u64,
    /// Next WAL sequence number an append will consume.
    pub next_seq: u64,
    /// WAL records recovery handed back for replay when this handle was
    /// opened.
    pub replayed_records: u64,
    /// Whether recovery found (and dropped) a torn final frame.
    pub torn_tail: bool,
}

/// What [`Storage::open`] recovered from the directory.
#[derive(Debug)]
pub struct Recovery {
    /// The store pair from the newest valid snapshot, or `None` when the
    /// directory held no snapshot.
    pub stores: Option<(RouteStore, TransitionStore)>,
    /// WAL records the snapshot does not cover, in sequence order, for the
    /// caller to replay through its normal update path.
    pub tail: Vec<Vec<u8>>,
    /// Whether the final WAL frame was torn (incomplete) and dropped.
    pub torn_tail: bool,
    /// Whether the directory held any snapshot or WAL data at all.
    pub found_existing: bool,
    /// Opaque metadata section of the recovered snapshot (empty when the
    /// snapshot carried none, or no snapshot existed). The sharded service
    /// stores its routing directory here via
    /// [`Storage::checkpoint_with_meta`].
    pub meta: Vec<u8>,
}

/// Telemetry cells the storage engine records into, pre-bound to the
/// owner's metrics registry (the service builds one from its
/// `ServiceMetrics`). Without instruments the engine stays silent — the
/// in-crate tests and any standalone use are unaffected.
#[derive(Debug, Clone)]
pub struct StorageInstruments {
    /// WAL frames appended through this handle.
    pub wal_appends: Counter,
    /// WAL bytes appended through this handle.
    pub wal_bytes: Counter,
    /// Latency of one [`Storage::append`] call — the write plus, per
    /// configuration, its fdatasync.
    pub wal_fsync: Stage,
    /// Checkpoint duration (snapshot write + WAL truncation + cleanup).
    pub checkpoint: Stage,
    /// High-water checkpoint duration in nanoseconds. Checkpoints run under
    /// the service's `&mut self`, so this is the maximum update-path pause a
    /// checkpoint has caused — the ROADMAP's `checkpoint_stall`.
    pub checkpoint_stall: Gauge,
    /// Ring of recent WAL/checkpoint events.
    pub recorder: Arc<FlightRecorder>,
}

/// Handle to one storage directory: the WAL for appends, plus checkpoint
/// bookkeeping.
#[derive(Debug)]
pub struct Storage {
    dir: PathBuf,
    wal: Wal,
    snapshot_last_seq: u64,
    snapshot_bytes: u64,
    replayed_records: u64,
    torn_tail: bool,
    instruments: Option<StorageInstruments>,
}

/// Snapshot file name for a snapshot covering sequences up to `last_seq`.
fn snapshot_name(last_seq: u64) -> String {
    format!("snapshot-{last_seq:020}.snap")
}

fn is_snapshot_name(name: &str) -> bool {
    name.starts_with("snapshot-") && name.ends_with(".snap")
}

// ---------------------------------------------------------------------------
// Sharded directory layout
// ---------------------------------------------------------------------------

/// Subdirectory of a sharded service root holding the router's own storage
/// (planner snapshot + global-form WAL).
pub const ROUTER_SUBDIR: &str = "router";

/// Subdirectory name of shard `index` under a sharded service root.
pub fn shard_subdir(index: usize) -> String {
    format!("shard-{index:03}")
}

/// Parses a `shard-NNN` subdirectory name back to its shard index.
pub fn parse_shard_subdir(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("shard-")?;
    if digits.len() != 3 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Whether `dir` directly contains storage data (a snapshot or WAL
/// segment). Returns `false` for a missing or unreadable directory.
pub fn dir_has_storage_data(dir: &Path) -> bool {
    let Ok(entries) = fs::read_dir(dir) else {
        return false;
    };
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if is_snapshot_name(&name) || wal::is_segment_name(&name) {
            return true;
        }
    }
    false
}

/// The sharded subdirectory layout found under a service root, if any.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLayout {
    /// Whether a `router/` subdirectory with storage data exists.
    pub router: bool,
    /// Indices of `shard-NNN/` subdirectories with storage data, ascending.
    pub shards: Vec<usize>,
}

impl ShardLayout {
    /// Number of shard subdirectories found.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether the shard indices are exactly `0..shard_count` (no gaps).
    pub fn is_contiguous(&self) -> bool {
        self.shards.iter().copied().eq(0..self.shards.len())
    }
}

/// Detects a sharded service layout under `root`: a `router/` and/or
/// `shard-NNN/` subdirectory that itself contains storage data. Returns
/// `None` when no such subdirectory exists (including for a missing root).
///
/// `QueryService::attach_storage` consults this so pointing a *flat*
/// service at a sharded root is refused with a recognisable error instead
/// of silently interleaving two layouts in one directory.
pub fn detect_shard_layout(root: &Path) -> Option<ShardLayout> {
    let entries = fs::read_dir(root).ok()?;
    let mut router = false;
    let mut shards = Vec::new();
    for entry in entries.flatten() {
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name == ROUTER_SUBDIR && dir_has_storage_data(&entry.path()) {
            router = true;
        } else if let Some(index) = parse_shard_subdir(&name) {
            if dir_has_storage_data(&entry.path()) {
                shards.push(index);
            }
        }
    }
    if !router && shards.is_empty() {
        return None;
    }
    shards.sort_unstable();
    Some(ShardLayout { router, shards })
}

impl Storage {
    /// Opens (creating if needed) a storage directory and recovers its
    /// state: the newest valid snapshot plus the WAL tail beyond it.
    ///
    /// Damage handling: a corrupted *newest* snapshot falls back to the
    /// next older valid one (the newest may be a crashed checkpoint's
    /// half-renamed debris on filesystems without atomic rename) — but if
    /// no snapshot is readable while at least one exists, the newest one's
    /// typed error is returned rather than silently starting empty. WAL
    /// frames covered by the chosen snapshot are skipped (an interrupted
    /// checkpoint leaves them behind harmlessly); a torn final frame is
    /// dropped and flagged; any other WAL damage is a typed error.
    pub fn open(dir: &Path, config: StorageConfig) -> Result<(Self, Recovery), StorageError> {
        fs::create_dir_all(dir).map_err(|e| StorageError::io("create storage dir", dir, e))?;
        // Leftover .tmp files are crashed snapshot writes: never valid state.
        let mut snapshots: Vec<String> = Vec::new();
        let mut found_wal = false;
        let entries =
            fs::read_dir(dir).map_err(|e| StorageError::io("list storage dir", dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StorageError::io("list storage dir", dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if is_snapshot_name(&name) {
                snapshots.push(name);
            } else if wal::is_segment_name(&name) {
                found_wal = true;
            } else if name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
        snapshots.sort();
        snapshots.reverse(); // newest first

        let mut stores = None;
        let mut meta = Vec::new();
        let mut snapshot_last_seq = 0u64;
        let mut snapshot_bytes = 0u64;
        let mut newest_error: Option<StorageError> = None;
        for name in &snapshots {
            let path = dir.join(name);
            match snapshot::read_snapshot_with_meta(&path) {
                Ok((routes, transitions, last_seq, snapshot_meta)) => {
                    snapshot_bytes = fs::metadata(&path)
                        .map(|m| m.len())
                        .map_err(|e| StorageError::io("stat snapshot", &path, e))?;
                    snapshot_last_seq = last_seq;
                    stores = Some((routes, transitions));
                    meta = snapshot_meta;
                    break;
                }
                Err(err) => {
                    if newest_error.is_none() {
                        newest_error = Some(err);
                    }
                }
            }
        }
        if stores.is_none() {
            if let Some(err) = newest_error {
                return Err(err);
            }
        }

        let scan = wal::scan_dir(dir)?;
        let mut segments = scan.segments;
        // Repair a torn tail on disk, not just in memory: truncate the
        // incomplete frame away (or delete a segment with no complete
        // frame at all). Leaving the torn bytes would strand them mid-log
        // once a later append opens a newer segment, turning a tolerated
        // crash signature into permanent corruption on the next open.
        if let Some(valid_bytes) = scan.torn_at {
            let (path, _) = segments
                .last()
                .cloned()
                .expect("torn tail implies a segment");
            if valid_bytes == 0 {
                fs::remove_file(&path)
                    .map_err(|e| StorageError::io("remove torn WAL segment", &path, e))?;
                segments.pop();
            } else {
                let file = fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| StorageError::io("open torn WAL segment", &path, e))?;
                file.set_len(valid_bytes)
                    .map_err(|e| StorageError::io("truncate torn WAL segment", &path, e))?;
                file.sync_all()
                    .map_err(|e| StorageError::io("fsync repaired WAL segment", &path, e))?;
                segments.last_mut().expect("segment kept").1 = valid_bytes;
            }
            snapshot::sync_dir(dir);
        }
        let mut tail = Vec::with_capacity(scan.frames.len());
        for (seq, record) in scan.frames {
            if seq > snapshot_last_seq {
                tail.push(record);
            }
        }
        let next_seq = scan.max_seq.max(snapshot_last_seq) + 1;
        let wal = Wal::resume(
            dir,
            WalConfig {
                segment_bytes: config.segment_bytes,
                fsync: config.fsync,
            },
            next_seq,
            segments,
        );
        let recovery = Recovery {
            stores,
            torn_tail: scan.torn_tail,
            found_existing: !snapshots.is_empty() || found_wal,
            tail,
            meta,
        };
        let storage = Storage {
            dir: dir.to_path_buf(),
            wal,
            snapshot_last_seq,
            snapshot_bytes,
            replayed_records: recovery.tail.len() as u64,
            torn_tail: recovery.torn_tail,
            instruments: None,
        };
        Ok((storage, recovery))
    }

    /// The directory this handle owns.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Installs the telemetry cells this handle records into from now on.
    pub fn set_instruments(&mut self, instruments: StorageInstruments) {
        self.instruments = Some(instruments);
    }

    /// Arms a deterministic fault plan on the WAL's sync points
    /// ([`WAL_WRITE_SITE`], [`WAL_FSYNC_SITE`], [`WAL_ROLLBACK_SITE`]): an
    /// injected failure takes exactly the path a real disk error would —
    /// rollback to the pre-batch length, or poison when rollback itself
    /// fails.
    pub fn set_failpoints(&mut self, failpoints: Arc<rknnt_fault::Failpoints>) {
        self.wal.set_failpoints(failpoints);
    }

    /// Appends a batch of opaque records to the WAL (one write, one fsync).
    /// Returns `(frames, bytes)` appended.
    pub fn append<R: AsRef<[u8]>>(&mut self, records: &[R]) -> Result<(u64, u64), StorageError> {
        match &self.instruments {
            None => self.wal.append_batch(records),
            Some(instruments) => {
                let span = Span::enter(&instruments.wal_fsync);
                let result = self.wal.append_batch(records);
                span.finish();
                if let Ok((frames, bytes)) = &result {
                    instruments.wal_appends.add(*frames);
                    instruments.wal_bytes.add(*bytes);
                    instruments.recorder.record(EventKind::WalAppend {
                        frames: u32::try_from(*frames).unwrap_or(u32::MAX),
                        bytes: *bytes,
                    });
                }
                result
            }
        }
    }

    /// Writes a new snapshot of the store pair covering every appended
    /// record, then truncates the now-obsolete WAL segments and deletes
    /// older snapshots. Crash-safe at every step: the snapshot lands via
    /// `.tmp`+rename, and until the old segments are gone their frames are
    /// skipped on recovery because the snapshot's sequence covers them.
    pub fn checkpoint(
        &mut self,
        routes: &RouteStore,
        transitions: &TransitionStore,
    ) -> Result<StorageStats, StorageError> {
        self.checkpoint_with_meta(routes, transitions, &[])
    }

    /// [`Storage::checkpoint`] with an opaque metadata section stored inside
    /// the snapshot payload (returned by [`Recovery::meta`](Recovery) on the
    /// next open), so caller-side directory state commits atomically with
    /// the stores it describes.
    pub fn checkpoint_with_meta(
        &mut self,
        routes: &RouteStore,
        transitions: &TransitionStore,
        meta: &[u8],
    ) -> Result<StorageStats, StorageError> {
        let span = self.instruments.as_ref().map(|instruments| {
            instruments.recorder.record(EventKind::CheckpointBegin);
            Span::enter(&instruments.checkpoint)
        });
        let last_seq = self.wal.next_seq() - 1;
        let path = self.dir.join(snapshot_name(last_seq));
        let bytes = snapshot::write_snapshot_with_meta(&path, routes, transitions, last_seq, meta)?;
        self.snapshot_last_seq = last_seq;
        self.snapshot_bytes = bytes;
        // The snapshot is durable; everything logged so far is obsolete.
        self.wal.truncate_all()?;
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| StorageError::io("list storage dir", &self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StorageError::io("list storage dir", &self.dir, e))?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if is_snapshot_name(&name) && name != snapshot_name(last_seq) {
                let _ = fs::remove_file(entry.path());
            }
        }
        if let (Some(span), Some(instruments)) = (span, self.instruments.as_ref()) {
            let nanos = u64::try_from(span.finish().as_nanos()).unwrap_or(u64::MAX);
            // The whole checkpoint ran under the service's `&mut self`, so
            // its duration is exactly the update-path stall it caused.
            instruments.checkpoint_stall.record_max(nanos);
            instruments
                .recorder
                .record(EventKind::CheckpointEnd { nanos });
        }
        Ok(self.stats())
    }

    /// Current counters for this handle.
    pub fn stats(&self) -> StorageStats {
        StorageStats {
            segments: self.wal.segments(),
            wal_bytes: self.wal.bytes(),
            wal_appends: self.wal.appends(),
            snapshot_bytes: self.snapshot_bytes,
            snapshot_last_seq: self.snapshot_last_seq,
            next_seq: self.wal.next_seq(),
            replayed_records: self.replayed_records,
            torn_tail: self.torn_tail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_geo::Point;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rknnt-storage-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn test_config() -> StorageConfig {
        StorageConfig::default().with_fsync(false)
    }

    fn small_stores() -> (RouteStore, TransitionStore) {
        let mut routes = RouteStore::default();
        routes
            .insert_route(vec![p(0.0, 0.0), p(10.0, 0.0)])
            .unwrap();
        let mut transitions = TransitionStore::default();
        transitions.insert(p(1.0, 1.0), p(9.0, 1.0)).unwrap();
        (routes, transitions)
    }

    #[test]
    fn open_empty_append_reopen_replays_the_tail() {
        let dir = temp_dir("tail");
        let (mut storage, recovery) = Storage::open(&dir, test_config()).unwrap();
        assert!(recovery.stores.is_none());
        assert!(recovery.tail.is_empty());
        assert!(!recovery.found_existing);
        storage.append(&[b"r1".to_vec(), b"r2".to_vec()]).unwrap();
        storage.append(&[b"r3".to_vec()]).unwrap();
        assert_eq!(storage.stats().wal_appends, 3);
        drop(storage);

        let (storage, recovery) = Storage::open(&dir, test_config()).unwrap();
        assert!(recovery.found_existing);
        assert!(recovery.stores.is_none());
        assert_eq!(
            recovery.tail,
            vec![b"r1".to_vec(), b"r2".to_vec(), b"r3".to_vec()]
        );
        assert_eq!(storage.stats().replayed_records, 3);
        assert_eq!(storage.stats().next_seq, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_truncates_and_recovery_skips_covered_frames() {
        let dir = temp_dir("checkpoint");
        let (mut storage, _) = Storage::open(&dir, test_config()).unwrap();
        storage.append(&[b"a".to_vec(), b"b".to_vec()]).unwrap();
        let (routes, transitions) = small_stores();
        let stats = storage.checkpoint(&routes, &transitions).unwrap();
        assert_eq!(stats.snapshot_last_seq, 2);
        assert_eq!(stats.segments, 0);
        assert_eq!(stats.wal_bytes, 0);
        storage.append(&[b"c".to_vec()]).unwrap();
        drop(storage);

        let (storage, recovery) = Storage::open(&dir, test_config()).unwrap();
        let (r, t) = recovery.stores.expect("snapshot must load");
        assert_eq!(r.export_state(), routes.export_state());
        assert_eq!(t.export_state(), transitions.export_state());
        assert_eq!(recovery.tail, vec![b"c".to_vec()]);
        assert_eq!(storage.stats().snapshot_last_seq, 2);
        assert_eq!(storage.stats().next_seq, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interrupted_checkpoint_leaves_replay_idempotent() {
        // Simulate a crash *between* snapshot write and segment truncation:
        // the snapshot exists, the old segments still hold frames its
        // sequence already covers. Recovery must not replay them.
        let dir = temp_dir("interrupted");
        let (mut storage, _) = Storage::open(&dir, test_config()).unwrap();
        storage.append(&[b"a".to_vec(), b"b".to_vec()]).unwrap();
        let (routes, transitions) = small_stores();
        // Write the snapshot by hand, skipping the truncation step.
        let last_seq = storage.stats().next_seq - 1;
        snapshot::write_snapshot(
            &dir.join(snapshot_name(last_seq)),
            &routes,
            &transitions,
            last_seq,
        )
        .unwrap();
        drop(storage);

        let (_, recovery) = Storage::open(&dir, test_config()).unwrap();
        assert!(recovery.stores.is_some());
        assert!(recovery.tail.is_empty(), "covered frames must be skipped");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_only_snapshot_is_a_typed_error_not_an_empty_start() {
        let dir = temp_dir("corrupt-snap");
        let (mut storage, _) = Storage::open(&dir, test_config()).unwrap();
        let (routes, transitions) = small_stores();
        storage.checkpoint(&routes, &transitions).unwrap();
        drop(storage);
        // Damage the single snapshot.
        let snap = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .find(|e| is_snapshot_name(&e.file_name().to_string_lossy()))
            .unwrap()
            .path();
        let mut bytes = fs::read(&snap).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&snap, &bytes).unwrap();
        let err = Storage::open(&dir, test_config()).unwrap_err();
        assert!(err.is_corruption(), "expected typed corruption, got {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newest_corrupt_snapshot_falls_back_to_an_older_valid_one() {
        let dir = temp_dir("fallback");
        fs::create_dir_all(&dir).unwrap();
        let (routes, transitions) = small_stores();
        snapshot::write_snapshot(&dir.join(snapshot_name(5)), &routes, &transitions, 5).unwrap();
        // A newer snapshot that is garbage.
        fs::write(dir.join(snapshot_name(9)), b"not a snapshot").unwrap();
        let (storage, recovery) = Storage::open(&dir, test_config()).unwrap();
        let (r, _) = recovery.stores.expect("older snapshot must win");
        assert_eq!(r.export_state(), routes.export_state());
        assert_eq!(storage.stats().snapshot_last_seq, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn appending_after_torn_tail_recovery_keeps_the_directory_openable() {
        // Regression: (a) recovery must physically truncate the torn bytes,
        // or the next append makes the torn segment non-final and every
        // later open fails as corruption; (b) new segments must be named by
        // their *first* frame's sequence, or the post-recovery append can
        // collide with an existing file name.
        let dir = temp_dir("torn-append");
        let (mut storage, _) = Storage::open(&dir, test_config()).unwrap();
        storage.append(&[b"a".to_vec(), b"b".to_vec()]).unwrap();
        drop(storage);
        let seg = wal::scan_dir(&dir).unwrap().segments[0].0.clone();
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 2]).unwrap(); // tear frame 2

        let (mut storage, recovery) = Storage::open(&dir, test_config()).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(recovery.tail, vec![b"a".to_vec()]);
        storage.append(&[b"c".to_vec()]).unwrap(); // must not collide
        drop(storage);

        let (_, recovery) = Storage::open(&dir, test_config()).unwrap();
        assert!(!recovery.torn_tail, "the torn bytes were repaired on disk");
        assert_eq!(recovery.tail, vec![b"a".to_vec(), b"c".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fully_torn_segment_is_removed_and_the_log_continues() {
        // A segment whose only frame is torn truncates to zero valid bytes:
        // recovery deletes it outright so the next append (which reuses the
        // same starting sequence) can recreate the name.
        let dir = temp_dir("torn-empty");
        let (mut storage, _) = Storage::open(&dir, test_config()).unwrap();
        storage.append(&[b"solo".to_vec()]).unwrap();
        drop(storage);
        let seg = wal::scan_dir(&dir).unwrap().segments[0].0.clone();
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..3]).unwrap(); // tear inside the only frame

        let (mut storage, recovery) = Storage::open(&dir, test_config()).unwrap();
        assert!(recovery.torn_tail);
        assert!(recovery.tail.is_empty());
        storage.append(&[b"replacement".to_vec()]).unwrap();
        drop(storage);
        let (_, recovery) = Storage::open(&dir, test_config()).unwrap();
        assert!(!recovery.torn_tail);
        assert_eq!(recovery.tail, vec![b"replacement".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_meta_round_trips_through_recovery() {
        let dir = temp_dir("meta");
        let (mut storage, _) = Storage::open(&dir, test_config()).unwrap();
        let (routes, transitions) = small_stores();
        storage.append(&[b"u1".to_vec()]).unwrap();
        storage
            .checkpoint_with_meta(&routes, &transitions, b"directory-v1")
            .unwrap();
        drop(storage);
        let (_, recovery) = Storage::open(&dir, test_config()).unwrap();
        assert_eq!(recovery.meta, b"directory-v1");
        // A plain checkpoint clears the meta on the next recovery.
        let (mut storage, _) = Storage::open(&dir, test_config()).unwrap();
        storage.checkpoint(&routes, &transitions).unwrap();
        drop(storage);
        let (_, recovery) = Storage::open(&dir, test_config()).unwrap();
        assert!(recovery.meta.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_layout_detection_sees_only_populated_subdirs() {
        let dir = temp_dir("layout");
        fs::create_dir_all(&dir).unwrap();
        assert!(detect_shard_layout(&dir).is_none());
        // Empty subdirectories with the right names are not yet a layout.
        fs::create_dir_all(dir.join(ROUTER_SUBDIR)).unwrap();
        fs::create_dir_all(dir.join(shard_subdir(0))).unwrap();
        assert!(detect_shard_layout(&dir).is_none());
        // A shard with actual storage data is.
        let (routes, transitions) = small_stores();
        let shard_dir = dir.join(shard_subdir(1));
        let (mut storage, _) = Storage::open(&shard_dir, test_config()).unwrap();
        storage.checkpoint(&routes, &transitions).unwrap();
        drop(storage);
        let layout = detect_shard_layout(&dir).expect("layout must be detected");
        assert!(!layout.router);
        assert_eq!(layout.shards, vec![1]);
        assert!(!layout.is_contiguous());
        // Populate the router and shard 0 as well: contiguous layout.
        for sub in [dir.join(ROUTER_SUBDIR), dir.join(shard_subdir(0))] {
            let (mut storage, _) = Storage::open(&sub, test_config()).unwrap();
            storage.checkpoint(&routes, &transitions).unwrap();
        }
        let layout = detect_shard_layout(&dir).unwrap();
        assert!(layout.router);
        assert_eq!(layout.shards, vec![0, 1]);
        assert!(layout.is_contiguous());
        assert_eq!(parse_shard_subdir("shard-007"), Some(7));
        assert_eq!(parse_shard_subdir("shard-7"), None);
        assert_eq!(parse_shard_subdir("shards-007"), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_reported_and_prefix_survives() {
        let dir = temp_dir("torn-open");
        let (mut storage, _) = Storage::open(&dir, test_config()).unwrap();
        storage
            .append(&[b"keep".to_vec(), b"torn".to_vec()])
            .unwrap();
        drop(storage);
        let seg = wal::scan_dir(&dir).unwrap().segments[0].0.clone();
        let bytes = fs::read(&seg).unwrap();
        fs::write(&seg, &bytes[..bytes.len() - 2]).unwrap();
        let (storage, recovery) = Storage::open(&dir, test_config()).unwrap();
        assert!(recovery.torn_tail);
        assert_eq!(recovery.tail, vec![b"keep".to_vec()]);
        assert!(storage.stats().torn_tail);
        fs::remove_dir_all(&dir).unwrap();
    }
}
