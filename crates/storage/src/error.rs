//! The typed error surface of the storage engine.

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong opening, appending to or checkpointing a
/// storage directory. Corruption is always a *typed* error naming the file
/// and what failed — never a panic, never a silent fallback — with one
/// documented exception: an incomplete (torn) final WAL frame, which a crash
/// mid-append legitimately produces and recovery tolerates by dropping it.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying filesystem operation failed.
    Io {
        /// What the engine was doing (e.g. "append WAL frame").
        context: String,
        /// The failing path.
        path: PathBuf,
        /// The OS error.
        source: std::io::Error,
    },
    /// A file's contents are structurally invalid: bad magic, impossible
    /// lengths, undecodable payload, out-of-range ids.
    Corrupt {
        /// The corrupted file.
        path: PathBuf,
        /// Byte offset of the corruption, when known.
        offset: Option<u64>,
        /// What was wrong.
        detail: String,
    },
    /// A checksum did not match: the payload was damaged after it was
    /// written (bit rot, partial overwrite, manual tampering).
    ChecksumMismatch {
        /// The damaged file.
        path: PathBuf,
        /// Byte offset of the guarded region.
        offset: u64,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum computed over the bytes actually present.
        computed: u32,
    },
    /// The file was written by an incompatible (newer) format version.
    UnsupportedVersion {
        /// The file.
        path: PathBuf,
        /// Version found in its header.
        version: u32,
    },
    /// `attach` requires a directory with no existing snapshot or WAL data;
    /// attaching over live state would silently shadow it.
    DirectoryNotEmpty {
        /// The offending directory.
        dir: PathBuf,
    },
    /// The directory holds a *sharded* service layout (`router/` and
    /// `shard-NNN/` subdirectories with their own storage data). A single
    /// service must not attach over it — recover the whole fleet with the
    /// sharded service's `open` instead.
    ShardedLayout {
        /// The root directory of the layout.
        dir: PathBuf,
        /// Shard subdirectories found under it.
        shards: usize,
    },
    /// A durability operation was requested on a service with no storage
    /// attached.
    NotAttached,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io {
                context,
                path,
                source,
            } => write!(f, "{context} ({}): {source}", path.display()),
            StorageError::Corrupt {
                path,
                offset,
                detail,
            } => match offset {
                Some(at) => write!(f, "corrupt {} at byte {at}: {detail}", path.display()),
                None => write!(f, "corrupt {}: {detail}", path.display()),
            },
            StorageError::ChecksumMismatch {
                path,
                offset,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {} at byte {offset}: stored {stored:#010x}, computed {computed:#010x}",
                path.display()
            ),
            StorageError::UnsupportedVersion { path, version } => write!(
                f,
                "{} uses unsupported format version {version}",
                path.display()
            ),
            StorageError::DirectoryNotEmpty { dir } => write!(
                f,
                "storage directory {} already holds snapshot/WAL data",
                dir.display()
            ),
            StorageError::ShardedLayout { dir, shards } => write!(
                f,
                "storage directory {} holds a sharded service layout ({shards} shard dir(s)); recover it with ShardedService::open",
                dir.display()
            ),
            StorageError::NotAttached => write!(f, "no storage attached to this service"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StorageError {
    /// Whether this error indicates damaged on-disk state (as opposed to an
    /// environmental I/O failure or API misuse).
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            StorageError::Corrupt { .. }
                | StorageError::ChecksumMismatch { .. }
                | StorageError::UnsupportedVersion { .. }
        )
    }

    pub(crate) fn io(context: &str, path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        StorageError::Io {
            context: context.to_string(),
            path: path.into(),
            source,
        }
    }

    pub(crate) fn corrupt(
        path: impl Into<PathBuf>,
        offset: Option<u64>,
        detail: impl Into<String>,
    ) -> Self {
        StorageError::Corrupt {
            path: path.into(),
            offset,
            detail: detail.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_file_and_classifies_corruption() {
        let err = StorageError::corrupt("/tmp/x.snap", Some(12), "bad magic");
        assert!(err.to_string().contains("x.snap"));
        assert!(err.to_string().contains("byte 12"));
        assert!(err.is_corruption());
        let err = StorageError::ChecksumMismatch {
            path: "/tmp/w.log".into(),
            offset: 0,
            stored: 1,
            computed: 2,
        };
        assert!(err.is_corruption());
        let err = StorageError::io(
            "read",
            "/tmp/gone",
            std::io::Error::new(std::io::ErrorKind::NotFound, "nope"),
        );
        assert!(!err.is_corruption());
        assert!(std::error::Error::source(&err).is_some());
        assert!(!StorageError::NotAttached.is_corruption());
    }
}
