//! Transition pruning (`PruneTransition`, Algorithm 4).
//!
//! With the filter set fixed, the TR-tree is traversed and every node that is
//! covered by the filtering spaces of at least `k` distinct routes is pruned
//! wholesale; surviving endpoints become candidates for exact verification.

use crate::filter::FilterSet;
use crate::scratch::RouteMarks;
use rknnt_geo::Point;
use rknnt_index::{EndpointKind, TransitionId, TransitionStore};
use rknnt_rtree::NodeId;
use serde::{Deserialize, Serialize};

/// A transition endpoint that survived pruning and awaits verification.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateEndpoint {
    /// The transition this endpoint belongs to.
    pub transition: TransitionId,
    /// Origin or destination.
    pub kind: EndpointKind,
    /// Location of the endpoint.
    pub point: Point,
}

/// Result of the pruning phase: the surviving candidate endpoints and the
/// number of TR-tree nodes pruned without being opened.
#[derive(Debug, Clone, Default)]
pub struct PruneOutcome {
    /// Candidate endpoints (`S_cnd`).
    pub candidates: Vec<CandidateEndpoint>,
    /// Number of TR-tree nodes pruned wholesale.
    pub pruned_nodes: usize,
}

/// `PruneTransition` (Algorithm 4): walks the TR-tree, prunes nodes and
/// points covered by at least `k` filtering routes, and returns the
/// surviving endpoints.
///
/// The traversal order does not affect the outcome because the filter set is
/// fixed, so a depth-first walk is used instead of the paper's distance
/// ordered heap; the pruning tests performed per node are identical.
pub fn prune_transitions(
    transitions: &TransitionStore,
    filter_set: &FilterSet,
    k: usize,
    use_voronoi: bool,
) -> PruneOutcome {
    let mut candidates = Vec::new();
    let pruned_nodes = prune_transitions_scratch(
        transitions,
        filter_set,
        k,
        use_voronoi,
        &mut RouteMarks::default(),
        &mut Vec::new(),
        &mut candidates,
    );
    PruneOutcome {
        candidates,
        pruned_nodes,
    }
}

/// Scratch-based implementation of [`prune_transitions`]: the `IsFiltered`
/// distinct-route counts run on the caller's mark table, the TR-tree is
/// walked over the caller's [`NodeId`] stack, and the surviving candidates
/// land in the caller's buffer (cleared on entry, capacity kept across
/// calls). Returns the number of TR-tree nodes pruned wholesale.
///
/// Traversal order — and therefore the candidate order — is exactly that of
/// the allocating wrapper.
pub(crate) fn prune_transitions_scratch(
    transitions: &TransitionStore,
    filter_set: &FilterSet,
    k: usize,
    use_voronoi: bool,
    marks: &mut RouteMarks,
    stack: &mut Vec<NodeId>,
    candidates: &mut Vec<CandidateEndpoint>,
) -> usize {
    candidates.clear();
    let tree = transitions.rtree();
    let Some(root) = tree.root() else {
        return 0;
    };
    let mut pruned_nodes = 0usize;
    stack.clear();
    stack.push(root.id());
    while let Some(id) = stack.pop() {
        let Some(node) = tree.node_ref(id) else {
            continue;
        };
        if filter_set.filters_rect_with(&node.mbr(), k, use_voronoi, marks) {
            pruned_nodes += 1;
            continue;
        }
        if node.is_leaf() {
            for entry in node.entries() {
                if filter_set.filters_point_with(&entry.point, k, use_voronoi, marks) {
                    continue;
                }
                candidates.push(CandidateEndpoint {
                    transition: entry.data.transition,
                    kind: entry.data.kind,
                    point: entry.point,
                });
            }
        } else {
            node.for_each_child(|child| stack.push(child.id()));
        }
    }
    pruned_nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::build_filter_set;
    use rknnt_geo::point_route_distance;
    use rknnt_index::RouteStore;
    use rknnt_rtree::RTreeConfig;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn ladder(n_routes: usize) -> RouteStore {
        let routes: Vec<Vec<Point>> = (0..n_routes)
            .map(|i| {
                let y = i as f64 * 10.0;
                (0..8).map(|j| p(j as f64 * 10.0, y)).collect()
            })
            .collect();
        let (store, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), routes);
        store
    }

    fn transitions_grid() -> TransitionStore {
        let mut store = TransitionStore::default();
        for i in 0..20 {
            for j in 0..12 {
                let o = p(i as f64 * 4.0, j as f64 * 9.0);
                let d = p(i as f64 * 4.0 + 2.0, j as f64 * 9.0 + 3.0);
                store.insert(o, d).unwrap();
            }
        }
        store
    }

    #[test]
    fn pruning_is_sound() {
        // Every endpoint NOT in the candidate set must genuinely fail the
        // kNN test (have >= k routes closer than the query).
        let routes = ladder(10);
        let transitions = transitions_grid();
        let query = vec![p(0.0, 45.0), p(35.0, 45.0), p(70.0, 45.0)];
        let k = 2;
        let outcome = build_filter_set(&routes, &query, k);
        for use_voronoi in [false, true] {
            let pruned = prune_transitions(&transitions, &outcome.filter_set, k, use_voronoi);
            let surviving: std::collections::HashSet<(u32, EndpointKind)> = pruned
                .candidates
                .iter()
                .map(|c| (c.transition.raw(), c.kind))
                .collect();
            for t in transitions.transitions() {
                for (kind, point) in [
                    (EndpointKind::Origin, t.origin),
                    (EndpointKind::Destination, t.destination),
                ] {
                    if surviving.contains(&(t.id.raw(), kind)) {
                        continue;
                    }
                    // Pruned: verify it really has >= k closer routes.
                    let d_query = point_route_distance(&point, &query);
                    let closer = routes
                        .routes()
                        .filter(|r| point_route_distance(&point, &r.points) <= d_query)
                        .count();
                    assert!(
                        closer >= k,
                        "endpoint {point} of T{} was pruned but only {closer} routes are closer (voronoi={use_voronoi})",
                        t.id.raw()
                    );
                }
            }
        }
    }

    #[test]
    fn voronoi_prunes_at_least_as_many_nodes() {
        let routes = ladder(12);
        let transitions = transitions_grid();
        let query = vec![p(0.0, 45.0), p(35.0, 45.0), p(70.0, 45.0)];
        let k = 3;
        let outcome = build_filter_set(&routes, &query, k);
        let plain = prune_transitions(&transitions, &outcome.filter_set, k, false);
        let voronoi = prune_transitions(&transitions, &outcome.filter_set, k, true);
        assert!(voronoi.candidates.len() <= plain.candidates.len());
    }

    #[test]
    fn empty_transition_store_yields_no_candidates() {
        let routes = ladder(5);
        let transitions = TransitionStore::default();
        let query = vec![p(0.0, 25.0), p(70.0, 25.0)];
        let outcome = build_filter_set(&routes, &query, 1);
        let pruned = prune_transitions(&transitions, &outcome.filter_set, 1, false);
        assert!(pruned.candidates.is_empty());
        assert_eq!(pruned.pruned_nodes, 0);
    }

    #[test]
    fn without_filter_points_everything_survives() {
        // An empty route store produces an empty filter set, so nothing can
        // be pruned and every endpoint is a candidate.
        let routes = RouteStore::default();
        let transitions = transitions_grid();
        let query = vec![p(0.0, 45.0), p(70.0, 45.0)];
        let outcome = build_filter_set(&routes, &query, 2);
        let pruned = prune_transitions(&transitions, &outcome.filter_set, 2, true);
        assert_eq!(pruned.candidates.len(), transitions.len() * 2);
    }
}
