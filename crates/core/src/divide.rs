//! The divide & conquer engine (Section 5.2).
//!
//! Lemma 3 states that the RkNNT of a multi-point query is the union of the
//! RkNNTs of its individual points. The engine therefore runs one
//! *single-point* filter/prune pass per query point — single-point filtering
//! spaces are the largest possible (Definition 6 degenerates to a single
//! half-plane per filter point), so each pass prunes aggressively — and
//! verifies the union of the surviving endpoints once against the full query.
//!
//! The same endpoint can survive several per-point passes; it is verified
//! only once. Verification against the full query is correct because an
//! endpoint qualifies for `Q` exactly when it qualifies for its nearest
//! query point, and pruning per point is sound, so every truly qualifying
//! endpoint survives at least the pass of its nearest query point.

use crate::engine::RknnTEngine;
use crate::filter::build_filter_set;
use crate::prune::prune_transitions_scratch;
use crate::query::{PhaseTimings, QueryStats, RknntQuery, RknntResult, Semantics};
use crate::scratch::QueryScratch;
use crate::verify::qualifies;
use rknnt_geo::{point_route_distance_sq, Point};
use rknnt_index::{EndpointKind, NList, RouteStore, TransitionStore};
use std::time::Instant;

/// The divide & conquer RkNNT engine.
pub struct DivideConquerEngine<'a> {
    routes: &'a RouteStore,
    transitions: &'a TransitionStore,
    nlist: NList,
    use_voronoi: bool,
}

impl<'a> DivideConquerEngine<'a> {
    /// Creates the divide & conquer engine. Per-point passes use the plain
    /// half-space filter (the single-point filtering space is already the
    /// largest possible, so the Voronoi enlargement adds little).
    pub fn new(routes: &'a RouteStore, transitions: &'a TransitionStore) -> Self {
        DivideConquerEngine {
            routes,
            transitions,
            nlist: NList::build(routes),
            use_voronoi: false,
        }
    }

    /// Enables the Voronoi step inside each per-point pass (exposed for the
    /// ablation benchmarks).
    pub fn with_voronoi(routes: &'a RouteStore, transitions: &'a TransitionStore) -> Self {
        DivideConquerEngine {
            use_voronoi: true,
            ..Self::new(routes, transitions)
        }
    }
}

impl RknnTEngine for DivideConquerEngine<'_> {
    fn name(&self) -> &'static str {
        "Divide-Conquer"
    }

    fn execute(&self, query: &RknntQuery) -> RknntResult {
        self.execute_scratch(query, &mut QueryScratch::new())
    }

    fn execute_scratch(&self, query: &RknntQuery, scratch: &mut QueryScratch) -> RknntResult {
        let mut result = RknntResult::default();
        if query.is_degenerate() {
            return result;
        }
        let QueryScratch {
            marks,
            node_stack,
            candidates,
            per_transition,
            union,
        } = scratch;

        // Per-query-point filter + prune passes; union of surviving endpoints.
        let filter_started = Instant::now();
        union.clear();
        let mut stats = QueryStats::default();
        for q in &query.route {
            let sub_query: Vec<Point> = vec![*q];
            let filter_outcome = build_filter_set(self.routes, &sub_query, query.k);
            let pruned_nodes = prune_transitions_scratch(
                self.transitions,
                &filter_outcome.filter_set,
                query.k,
                self.use_voronoi,
                marks,
                node_stack,
                candidates,
            );
            stats.filter_points += filter_outcome.filter_set.num_points();
            stats.filter_routes += filter_outcome.filter_set.num_routes();
            stats.refine_nodes += filter_outcome.refine_nodes.len();
            stats.pruned_tr_nodes += pruned_nodes;
            for cand in candidates.iter() {
                union.insert((cand.transition, cand.kind), cand.point);
            }
        }
        stats.candidate_endpoints = union.len();
        let filtering = filter_started.elapsed();

        // Single verification pass over the union, against the full query.
        let verify_started = Instant::now();
        per_transition.clear();
        for ((transition, kind), point) in union.iter() {
            let threshold_sq = point_route_distance_sq(point, &query.route);
            let ok = qualifies(
                self.routes,
                &self.nlist,
                point,
                threshold_sq,
                query.k,
                marks,
                node_stack,
            );
            if ok {
                stats.verified_endpoints += 1;
            }
            let entry = per_transition.entry(*transition).or_insert((false, false));
            match kind {
                EndpointKind::Origin => entry.0 |= ok,
                EndpointKind::Destination => entry.1 |= ok,
            }
        }
        result.transitions.reserve_exact(per_transition.len());
        for (id, (origin_ok, dest_ok)) in per_transition.iter() {
            let include = match query.semantics {
                Semantics::Exists => *origin_ok || *dest_ok,
                Semantics::ForAll => *origin_ok && *dest_ok,
            };
            if include {
                result.transitions.push(*id);
            }
        }
        result.transitions.sort_unstable();
        let verification = verify_started.elapsed();

        stats.result_transitions = result.transitions.len();
        result.stats = stats;
        result.timings = PhaseTimings {
            filtering,
            verification,
        };
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceEngine;
    use crate::filter_refine::FilterRefineEngine;
    use rknnt_rtree::RTreeConfig;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn world() -> (RouteStore, TransitionStore) {
        let routes: Vec<Vec<Point>> = (0..10)
            .map(|i| {
                let y = i as f64 * 12.0;
                (0..6)
                    .map(|j| p(j as f64 * 12.0, y + (j % 2) as f64))
                    .collect()
            })
            .collect();
        let (route_store, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), routes);
        let mut transition_store = TransitionStore::default();
        for i in 0..120u32 {
            let ox = (i as f64 * 5.77) % 60.0;
            let oy = (i as f64 * 11.31) % 108.0;
            let dx = (i as f64 * 2.71 + 13.0) % 60.0;
            let dy = (i as f64 * 19.1 + 7.0) % 108.0;
            transition_store.insert(p(ox, oy), p(dx, dy)).unwrap();
        }
        (route_store, transition_store)
    }

    #[test]
    fn matches_brute_force_and_filter_refine() {
        let (routes, transitions) = world();
        let oracle = BruteForceEngine::new(&routes, &transitions);
        let fr = FilterRefineEngine::new(&routes, &transitions);
        let dc = DivideConquerEngine::new(&routes, &transitions);
        let dc_v = DivideConquerEngine::with_voronoi(&routes, &transitions);
        for k in [1usize, 3, 7] {
            for semantics in [Semantics::Exists, Semantics::ForAll] {
                let query = RknntQuery {
                    route: vec![p(3.0, 31.0), p(23.0, 31.0), p(43.0, 33.0), p(58.0, 31.0)],
                    k,
                    semantics,
                };
                let expected = oracle.execute(&query).transitions;
                assert_eq!(fr.execute(&query).transitions, expected, "fr k={k}");
                assert_eq!(dc.execute(&query).transitions, expected, "dc k={k}");
                assert_eq!(dc_v.execute(&query).transitions, expected, "dc+v k={k}");
            }
        }
    }

    #[test]
    fn single_point_query_equivalence() {
        // For |Q| = 1 the divide & conquer engine degenerates to one pass and
        // must agree with the others exactly.
        let (routes, transitions) = world();
        let oracle = BruteForceEngine::new(&routes, &transitions);
        let dc = DivideConquerEngine::new(&routes, &transitions);
        let query = RknntQuery::exists(vec![p(30.0, 55.0)], 2);
        assert_eq!(
            dc.execute(&query).transitions,
            oracle.execute(&query).transitions
        );
    }

    #[test]
    fn union_lemma_holds() {
        // Lemma 3: RkNNT(Q) = ∪ RkNNT(q_i) under ∃ semantics.
        let (routes, transitions) = world();
        let oracle = BruteForceEngine::new(&routes, &transitions);
        let points = vec![p(3.0, 31.0), p(23.0, 31.0), p(43.0, 33.0)];
        let k = 2;
        let whole = oracle
            .execute(&RknntQuery::exists(points.clone(), k))
            .transitions;
        let mut union: Vec<_> = points
            .iter()
            .flat_map(|q| oracle.execute(&RknntQuery::exists(vec![*q], k)).transitions)
            .collect();
        union.sort_unstable();
        union.dedup();
        assert_eq!(whole, union);
    }

    #[test]
    fn name_and_degenerate_handling() {
        let (routes, transitions) = world();
        let dc = DivideConquerEngine::new(&routes, &transitions);
        assert_eq!(dc.name(), "Divide-Conquer");
        assert!(dc.execute(&RknntQuery::exists(vec![], 4)).is_empty());
    }
}
