//! Exact verification: counting the distinct routes closer to a candidate
//! point than the query.
//!
//! A transition endpoint `t` takes the query route `Q` as one of its k
//! nearest routes iff fewer than `k` distinct routes of `D_R` are strictly
//! closer to `t` than `Q` is. The verification phase therefore needs, per
//! candidate, the count of distinct closer routes — capped at `k`, because
//! once `k` closer routes are known the candidate is disqualified.
//!
//! The traversal mirrors the paper's use of the `NList` (Section 4.2.3):
//! when a whole RR-tree node is known to be closer than the threshold (its
//! maximum distance to the candidate is below the threshold), all routes
//! listed for that node in the NList are accounted for at once without
//! descending further.

use crate::scratch::RouteMarks;
use rknnt_geo::Point;
use rknnt_index::{NList, RouteId, RouteStore};
use rknnt_rtree::NodeId;
use std::collections::HashSet;

/// Counts distinct routes whose distance to `t` is strictly below
/// `threshold`, stopping early once `limit` distinct routes have been found
/// (the returned value is then exactly `limit`).
///
/// `nlist` must have been built from the current state of `routes`.
pub fn count_closer_routes(
    routes: &RouteStore,
    nlist: &NList,
    t: &Point,
    threshold: f64,
    limit: usize,
) -> usize {
    count_closer_routes_sq(routes, nlist, t, threshold * threshold, limit)
}

/// Variant of [`count_closer_routes`] taking the *squared* threshold.
///
/// The query engines use this form with the squared point-route distance to
/// the query, so that exact ties (a stop at the same distance as the query,
/// e.g. when a query point coincides with a stop) are compared without a
/// `sqrt`/re-square round-trip that could turn a tie into "strictly closer".
///
/// This is the *allocating reference path*: it builds a fresh
/// `HashSet<RouteId>` and traversal stack per call. Hot loops use the
/// scratch-based twin [`crate::QueryScratch::count_closer_routes_sq`], which
/// returns the identical count (property-tested in
/// `tests/verify_scratch_properties.rs`) with zero allocations after
/// warm-up; the `verify_hot_path` benchmark measures the two against each
/// other on the same store.
pub fn count_closer_routes_sq(
    routes: &RouteStore,
    nlist: &NList,
    t: &Point,
    threshold_sq: f64,
    limit: usize,
) -> usize {
    if limit == 0 {
        return 0;
    }
    let tree = routes.rtree();
    let Some(root) = tree.root() else { return 0 };

    let mut closer: HashSet<RouteId> = HashSet::new();
    let mut stack = vec![root];

    while let Some(node) = stack.pop() {
        if closer.len() >= limit {
            break;
        }
        let mbr = node.mbr();
        // Nothing under this node can be closer than the threshold.
        if mbr.min_dist_sq(t) >= threshold_sq {
            continue;
        }
        // Everything under this node is closer: account for all its routes
        // via the NList without descending (the paper's node-level shortcut).
        if mbr.max_dist_sq(t) < threshold_sq {
            for r in nlist.routes_under(node.id()) {
                closer.insert(*r);
                if closer.len() >= limit {
                    return limit;
                }
            }
            continue;
        }
        if node.is_leaf() {
            for entry in node.entries() {
                if entry.point.distance_sq(t) < threshold_sq {
                    for r in routes.crossover(entry.data) {
                        closer.insert(*r);
                        if closer.len() >= limit {
                            return limit;
                        }
                    }
                }
            }
        } else if closer.len() < limit {
            // Invariant guard, not an optimisation: the loop-top check
            // already guarantees `closer.len() < limit` here (every branch
            // that reaches the limit returns immediately). Kept so an edit
            // that adds counting between the top check and this descend
            // cannot silently reintroduce dead traversal.
            stack.extend(node.children());
        }
    }
    closer.len().min(limit)
}

/// Scratch-based implementation of [`count_closer_routes_sq`]: the distinct
/// route set is an epoch-stamped mark table and the traversal reuses the
/// caller's [`NodeId`] stack via [`rknnt_rtree::NodeRef::for_each_child`],
/// so after warm-up the call performs zero heap allocations.
///
/// The traversal order, counting and early-exit behaviour are exactly those
/// of the allocating path; both return `min(distinct count, limit)`.
pub(crate) fn count_closer_routes_sq_scratch(
    routes: &RouteStore,
    nlist: &NList,
    t: &Point,
    threshold_sq: f64,
    limit: usize,
    marks: &mut RouteMarks,
    stack: &mut Vec<NodeId>,
) -> usize {
    if limit == 0 {
        return 0;
    }
    let tree = routes.rtree();
    let Some(root) = tree.root() else { return 0 };

    marks.begin();
    stack.clear();
    stack.push(root.id());

    while let Some(id) = stack.pop() {
        if marks.count() >= limit {
            break;
        }
        let Some(node) = tree.node_ref(id) else {
            continue;
        };
        let mbr = node.mbr();
        // Nothing under this node can be closer than the threshold.
        if mbr.min_dist_sq(t) >= threshold_sq {
            continue;
        }
        // Everything under this node is closer: account for all its routes
        // via the NList without descending (the paper's node-level shortcut).
        // The CSR layout returns the node's list as one contiguous slice.
        if mbr.max_dist_sq(t) < threshold_sq {
            for r in nlist.routes_under(id) {
                if marks.mark(*r) && marks.count() >= limit {
                    return limit;
                }
            }
            continue;
        }
        if node.is_leaf() {
            for entry in node.entries() {
                if entry.point.distance_sq(t) < threshold_sq {
                    for r in routes.crossover(entry.data) {
                        if marks.mark(*r) && marks.count() >= limit {
                            return limit;
                        }
                    }
                }
            }
        } else if marks.count() < limit {
            // Invariant guard, not an optimisation: the loop-top check
            // already guarantees `marks.count() < limit` here (every branch
            // that reaches the limit returns immediately). Kept so an edit
            // that adds counting between the top check and this descend
            // cannot silently reintroduce dead traversal.
            node.for_each_child(|child| stack.push(child.id()));
        }
    }
    marks.count().min(limit)
}

/// Convenience predicate: does the point `t` take the query as one of its k
/// nearest routes, given the *squared* threshold `dist²(t, Q)`? Runs on the
/// caller's scratch so the per-candidate verification loop never allocates.
pub(crate) fn qualifies(
    routes: &RouteStore,
    nlist: &NList,
    t: &Point,
    dist_sq_to_query: f64,
    k: usize,
    marks: &mut RouteMarks,
    stack: &mut Vec<NodeId>,
) -> bool {
    count_closer_routes_sq_scratch(routes, nlist, t, dist_sq_to_query, k, marks, stack) < k
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_geo::point_route_distance;
    use rknnt_rtree::RTreeConfig;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    /// Parallel horizontal routes at y = 0, 10, 20, ..., 90.
    fn parallel_routes() -> RouteStore {
        let routes: Vec<Vec<Point>> = (0..10)
            .map(|i| {
                let y = i as f64 * 10.0;
                (0..6).map(|j| p(j as f64 * 10.0, y)).collect()
            })
            .collect();
        let (store, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), routes);
        store
    }

    /// Brute-force reference: scan every route.
    fn brute_count(store: &RouteStore, t: &Point, threshold: f64) -> usize {
        store
            .routes()
            .filter(|r| point_route_distance(t, &r.points) < threshold)
            .count()
    }

    #[test]
    fn counts_match_brute_force() {
        let store = parallel_routes();
        let nlist = NList::build(&store);
        let probes = [
            p(25.0, 5.0),
            p(25.0, 12.0),
            p(-10.0, 50.0),
            p(100.0, 100.0),
            p(25.0, 45.0),
        ];
        for t in probes {
            for threshold in [1.0, 6.0, 11.0, 26.0, 200.0] {
                let expected = brute_count(&store, &t, threshold);
                let got = count_closer_routes(&store, &nlist, &t, threshold, usize::MAX);
                assert_eq!(got, expected, "t = {t}, threshold = {threshold}");
            }
        }
    }

    #[test]
    fn limit_caps_the_count() {
        let store = parallel_routes();
        let nlist = NList::build(&store);
        let t = p(25.0, 45.0);
        // With a huge threshold every route is closer; limit caps the answer.
        assert_eq!(count_closer_routes(&store, &nlist, &t, 1e6, 3), 3);
        assert_eq!(count_closer_routes(&store, &nlist, &t, 1e6, 0), 0);
        assert_eq!(
            count_closer_routes(&store, &nlist, &t, 1e6, usize::MAX),
            store.num_routes()
        );
    }

    #[test]
    fn qualifies_matches_definition() {
        let store = parallel_routes();
        let nlist = NList::build(&store);
        let (mut marks, mut stack) = (RouteMarks::default(), Vec::new());
        let mut q = |t: &Point, d_sq: f64, k: usize| {
            qualifies(&store, &nlist, t, d_sq, k, &mut marks, &mut stack)
        };
        // A query route along y = 45 (between routes at 40 and 50).
        let query = vec![p(0.0, 45.0), p(20.0, 45.0), p(50.0, 45.0)];
        // A point at y = 44: the query is 1 away, routes at y=40 are 4 away.
        let close = p(25.0, 44.0);
        let d = point_route_distance(&close, &query);
        assert!(q(&close, d * d, 1));
        // A point at y = 10 sits on a route; many routes are closer than the
        // query (which is 35 away), so it does not qualify even for k = 3.
        let far = p(25.0, 10.0);
        let d_far = point_route_distance(&far, &query);
        assert!(!q(&far, d_far * d_far, 3));
        // ...but with a large enough k it does.
        assert!(q(&far, d_far * d_far, store.num_routes() + 1));
    }

    #[test]
    fn scratch_path_matches_allocating_path() {
        let store = parallel_routes();
        let nlist = NList::build(&store);
        let mut scratch = crate::QueryScratch::new();
        let probes = [
            p(25.0, 5.0),
            p(25.0, 12.0),
            p(-10.0, 50.0),
            p(100.0, 100.0),
            p(25.0, 45.0),
        ];
        for t in probes {
            for threshold in [1.0f64, 6.0, 11.0, 26.0, 200.0] {
                for limit in [0usize, 1, 3, usize::MAX] {
                    let sq = threshold * threshold;
                    let legacy = count_closer_routes_sq(&store, &nlist, &t, sq, limit);
                    let scr = scratch.count_closer_routes_sq(&store, &nlist, &t, sq, limit);
                    assert_eq!(
                        scr, legacy,
                        "t = {t}, threshold = {threshold}, limit = {limit}"
                    );
                }
            }
        }
        // Empty store.
        let empty = RouteStore::default();
        let empty_nlist = NList::build(&empty);
        assert_eq!(
            scratch.count_closer_routes_sq(&empty, &empty_nlist, &p(0.0, 0.0), 100.0, 5),
            0
        );
    }

    #[test]
    fn empty_store_counts_zero() {
        let store = RouteStore::default();
        let nlist = NList::build(&store);
        assert_eq!(
            count_closer_routes(&store, &nlist, &p(0.0, 0.0), 10.0, 5),
            0
        );
    }
}
