//! Query description, result and statistics types.

use rknnt_geo::Point;
use rknnt_index::TransitionId;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Which flavour of RkNNT to answer (Definition 4 / 5).
///
/// * `Exists` (∃RkNNT): a transition qualifies when *at least one* of its
///   endpoints takes the query as a kNN. This is the paper's default.
/// * `ForAll` (∀RkNNT): a transition qualifies when *both* endpoints take
///   the query as a kNN. By Lemma 1, `ForAll ⊆ Exists`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Semantics {
    /// ∃RkNNT — at least one endpoint qualifies.
    #[default]
    Exists,
    /// ∀RkNNT — both endpoints must qualify.
    ForAll,
}

impl std::fmt::Display for Semantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Semantics::Exists => "exists",
            Semantics::ForAll => "forall",
        })
    }
}

impl std::str::FromStr for Semantics {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "exists" | "exist" | "any" | "∃" => Ok(Semantics::Exists),
            "forall" | "for-all" | "for_all" | "all" | "∀" => Ok(Semantics::ForAll),
            other => Err(format!(
                "unknown semantics {other:?}; expected exists or forall"
            )),
        }
    }
}

/// An RkNNT query: a query route `Q`, the neighbourhood size `k`, and the
/// desired semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RknntQuery {
    /// Points of the query route, in travel order.
    pub route: Vec<Point>,
    /// Number of nearest routes considered (k of "k nearest").
    pub k: usize,
    /// ∃ or ∀ semantics.
    pub semantics: Semantics,
}

impl RknntQuery {
    /// Builds an ∃RkNNT query.
    pub fn exists(route: Vec<Point>, k: usize) -> Self {
        RknntQuery {
            route,
            k,
            semantics: Semantics::Exists,
        }
    }

    /// Builds a ∀RkNNT query.
    pub fn for_all(route: Vec<Point>, k: usize) -> Self {
        RknntQuery {
            route,
            k,
            semantics: Semantics::ForAll,
        }
    }

    /// Whether the query is trivially empty (no points or `k == 0`); engines
    /// return an empty result for such queries.
    pub fn is_degenerate(&self) -> bool {
        self.route.is_empty() || self.k == 0
    }
}

/// Wall-clock time spent in the two phases the paper's breakdown figures
/// report: filtering (filter-set construction plus transition pruning) and
/// verification (exact refinement of surviving candidates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// Filter-set construction + TR-tree pruning.
    pub filtering: Duration,
    /// Exact verification of candidates.
    pub verification: Duration,
}

impl PhaseTimings {
    /// Total time across both phases.
    pub fn total(&self) -> Duration {
        self.filtering + self.verification
    }
}

/// Work counters reported alongside a query result. Useful for the ablation
/// benchmarks and for understanding where pruning power comes from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Number of filtering points kept in the filter set (|S_filter.P|).
    pub filter_points: usize,
    /// Number of distinct routes contributing filter points (|S_filter.R|).
    pub filter_routes: usize,
    /// RR-tree nodes set aside as "filtered" during filter-set construction
    /// (|S_refine|).
    pub refine_nodes: usize,
    /// TR-tree nodes pruned wholesale during transition pruning.
    pub pruned_tr_nodes: usize,
    /// Candidate endpoints surviving transition pruning (|S_cnd|).
    pub candidate_endpoints: usize,
    /// Candidate endpoints confirmed by verification.
    pub verified_endpoints: usize,
    /// Transitions in the final result (|S_result|).
    pub result_transitions: usize,
}

/// Result of an RkNNT query.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RknntResult {
    /// Identifiers of the qualifying transitions, sorted ascending.
    pub transitions: Vec<TransitionId>,
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
    /// Work counters.
    pub stats: QueryStats,
}

impl RknntResult {
    /// Number of transitions in the result (the paper's |ω(R)| when the
    /// query is a route of the network).
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether no transition qualifies.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Whether a specific transition is part of the result.
    pub fn contains(&self, id: TransitionId) -> bool {
        self.transitions.binary_search(&id).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_semantics() {
        let q1 = RknntQuery::exists(vec![Point::new(0.0, 0.0)], 3);
        let q2 = RknntQuery::for_all(vec![Point::new(0.0, 0.0)], 3);
        assert_eq!(q1.semantics, Semantics::Exists);
        assert_eq!(q2.semantics, Semantics::ForAll);
        assert_eq!(Semantics::default(), Semantics::Exists);
    }

    #[test]
    fn semantics_roundtrip_display_fromstr() {
        for semantics in [Semantics::Exists, Semantics::ForAll] {
            let parsed: Semantics = semantics.to_string().parse().unwrap();
            assert_eq!(parsed, semantics);
        }
        assert_eq!("for_all".parse::<Semantics>().unwrap(), Semantics::ForAll);
        assert_eq!("ANY".parse::<Semantics>().unwrap(), Semantics::Exists);
        assert!("both".parse::<Semantics>().is_err());
    }

    #[test]
    fn degenerate_queries_detected() {
        assert!(RknntQuery::exists(vec![], 3).is_degenerate());
        assert!(RknntQuery::exists(vec![Point::new(1.0, 1.0)], 0).is_degenerate());
        assert!(!RknntQuery::exists(vec![Point::new(1.0, 1.0)], 1).is_degenerate());
    }

    #[test]
    fn result_contains_uses_sorted_ids() {
        let r = RknntResult {
            transitions: vec![TransitionId(1), TransitionId(5), TransitionId(9)],
            ..Default::default()
        };
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!(r.contains(TransitionId(5)));
        assert!(!r.contains(TransitionId(4)));
    }

    #[test]
    fn timings_total() {
        let t = PhaseTimings {
            filtering: Duration::from_millis(3),
            verification: Duration::from_millis(7),
        };
        assert_eq!(t.total(), Duration::from_millis(10));
    }
}
