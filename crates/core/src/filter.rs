//! Filter-set construction (Algorithm 2) and the `IsFiltered` predicate
//! (Algorithm 3).
//!
//! The filter set `S_filter` is a small subset of route points chosen by a
//! best-first traversal of the RR-tree in increasing `MinDist` to the query:
//! a route point that cannot itself be pruned by the points already chosen is
//! added to the set (its half-space will help prune everything that comes
//! later). RR-tree nodes that *can* be pruned during this traversal form the
//! refinement node set `S_refine`.
//!
//! `IsFiltered` decides whether an entry (an R-tree node MBR or a single
//! point) is covered by the filtering spaces of at least `k` distinct routes:
//! first using the individual filter points (whose crossover sets may count
//! several routes at once — Definition 7), then, when enabled, using the
//! per-route Voronoi filtering spaces of Section 5.1.

use crate::scratch::RouteMarks;
use rknnt_geo::{
    min_dist_query_rect, point_route_distance, FilteringSpace, Point, Rect, VoronoiFilter,
};
use rknnt_index::{RouteId, RouteStore, StopId};
use rknnt_rtree::NodeId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// One filtering point: a stop, its location, the routes crossing it and the
/// pre-computed filtering space against the query.
#[derive(Debug, Clone)]
pub struct FilterPoint {
    /// Stop identifier in the route store.
    pub stop: StopId,
    /// Location of the stop.
    pub point: Point,
    /// Crossover route set `C(r)` of the stop.
    pub crossover: Vec<RouteId>,
    /// Filtering space `H_{r:Q}` of the stop against the query.
    pub space: FilteringSpace,
}

/// The filter set `S_filter`: filtering points (`S_filter.P`) plus the
/// per-route grouping (`S_filter.R`) and, after [`FilterSet::finalize`], the
/// per-route Voronoi filtering spaces.
#[derive(Debug, Clone, Default)]
pub struct FilterSet {
    points: Vec<FilterPoint>,
    by_route: HashMap<RouteId, Vec<Point>>,
    voronoi: Vec<(RouteId, VoronoiFilter)>,
}

impl FilterSet {
    /// Number of filtering points (|S_filter.P|).
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Number of distinct routes represented (|S_filter.R|).
    pub fn num_routes(&self) -> usize {
        self.by_route.len()
    }

    /// The filtering points, sorted by decreasing crossover-set size once
    /// the set has been finalized.
    pub fn points(&self) -> &[FilterPoint] {
        &self.points
    }

    /// Whether the set holds no filtering points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Adds a filtering point discovered by the RR-tree traversal.
    fn add(&mut self, stop: StopId, point: Point, crossover: Vec<RouteId>, query: &[Point]) {
        for r in &crossover {
            self.by_route.entry(*r).or_default().push(point);
        }
        self.points.push(FilterPoint {
            stop,
            point,
            crossover,
            space: FilteringSpace::new(point, query),
        });
    }

    /// Sorts the point list by decreasing crossover size (Algorithm 3
    /// accesses points in that order so points shared by many routes are
    /// tried first) and builds the per-route Voronoi filtering spaces.
    fn finalize(&mut self, query: &[Point]) {
        self.points
            .sort_by_key(|fp| std::cmp::Reverse(fp.crossover.len()));
        self.voronoi = self
            .by_route
            .iter()
            .map(|(route, pts)| (*route, VoronoiFilter::new(pts.clone(), query.to_vec())))
            .collect();
        // Deterministic order helps reproducibility of the stats.
        self.voronoi.sort_by_key(|(r, _)| *r);
    }

    /// `IsFiltered` for an R-tree node MBR: is the rectangle covered by the
    /// filtering spaces of at least `k` distinct routes?
    ///
    /// The *strict* geometric predicates are used: a route only counts as a
    /// pruning witness when it is strictly closer than the query. Exact ties
    /// (common when a query point coincides with a bus stop, e.g. in the
    /// per-vertex pre-computation of the route planner) are therefore left to
    /// the exact verification phase, matching the result definition "fewer
    /// than k routes strictly closer".
    pub fn filters_rect(&self, rect: &Rect, k: usize, use_voronoi: bool) -> bool {
        self.filters_rect_with(rect, k, use_voronoi, &mut RouteMarks::default())
    }

    /// `IsFiltered` for a single point (strict, like
    /// [`FilterSet::filters_rect`]).
    pub fn filters_point(&self, p: &Point, k: usize, use_voronoi: bool) -> bool {
        self.filters_point_with(p, k, use_voronoi, &mut RouteMarks::default())
    }

    /// [`FilterSet::filters_rect`] on a caller-provided mark table — the
    /// form the pruning hot loop uses so the per-node distinct-route count
    /// allocates nothing once the table is warmed.
    pub fn filters_rect_with(
        &self,
        rect: &Rect,
        k: usize,
        use_voronoi: bool,
        marks: &mut RouteMarks,
    ) -> bool {
        self.filters_impl(
            k,
            use_voronoi,
            marks,
            |space| space.strictly_contains_rect(rect),
            |vf| vf.strictly_contains_rect(rect),
        )
    }

    /// [`FilterSet::filters_point`] on a caller-provided mark table.
    pub fn filters_point_with(
        &self,
        p: &Point,
        k: usize,
        use_voronoi: bool,
        marks: &mut RouteMarks,
    ) -> bool {
        self.filters_impl(
            k,
            use_voronoi,
            marks,
            |space| space.strictly_contains_point(p),
            |vf| vf.strictly_contains_point(p),
        )
    }

    fn filters_impl<F, G>(
        &self,
        k: usize,
        use_voronoi: bool,
        marks: &mut RouteMarks,
        inside_space: F,
        inside_voronoi: G,
    ) -> bool
    where
        F: Fn(&FilteringSpace) -> bool,
        G: Fn(&VoronoiFilter) -> bool,
    {
        if k == 0 {
            return true;
        }
        marks.begin();
        // Step 1: individual filter points, in decreasing crossover order.
        for fp in &self.points {
            if inside_space(&fp.space) {
                for r in &fp.crossover {
                    marks.mark(*r);
                }
                if marks.count() >= k {
                    return true;
                }
            }
        }
        if !use_voronoi {
            return marks.count() >= k;
        }
        // Step 2: per-route Voronoi filtering spaces for routes not yet
        // counted (Section 5.1).
        for (route, vf) in &self.voronoi {
            if marks.contains(*route) {
                continue;
            }
            if inside_voronoi(vf) {
                marks.mark(*route);
                if marks.count() >= k {
                    return true;
                }
            }
        }
        marks.count() >= k
    }
}

/// Output of the filter-route phase: the filter set and the RR-tree nodes
/// pruned during its construction (`S_refine`).
#[derive(Debug, Clone)]
pub struct FilterOutcome {
    /// The filter set `S_filter`.
    pub filter_set: FilterSet,
    /// Ids of the RR-tree nodes pruned during filter construction.
    pub refine_nodes: Vec<NodeId>,
}

/// Heap entry for the best-first traversal of Algorithm 2.
enum HeapEntry {
    Node(NodeId),
    Stop(StopId, Point),
}

struct HeapItem {
    dist: f64,
    entry: HeapEntry,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want the closest entry first.
        other.dist.total_cmp(&self.dist)
    }
}

/// `FilterRoute` (Algorithm 2): chooses the filter set by a best-first
/// traversal of the RR-tree, and records the pruned nodes for refinement.
///
/// The per-point half-space test (step 1 of `IsFiltered`) is always used
/// here; the Voronoi enlargement only participates in transition pruning,
/// after the filter set is complete and its per-route Voronoi diagrams have
/// been built.
pub fn build_filter_set(routes: &RouteStore, query: &[Point], k: usize) -> FilterOutcome {
    let mut filter_set = FilterSet::default();
    let mut refine_nodes = Vec::new();
    let tree = routes.rtree();
    let Some(root) = tree.root() else {
        return FilterOutcome {
            filter_set,
            refine_nodes,
        };
    };
    if query.is_empty() {
        return FilterOutcome {
            filter_set,
            refine_nodes,
        };
    }

    let mut heap = BinaryHeap::new();
    let mut marks = RouteMarks::default();
    heap.push(HeapItem {
        dist: min_dist_query_rect(query, &root.mbr()),
        entry: HeapEntry::Node(root.id()),
    });

    while let Some(item) = heap.pop() {
        match item.entry {
            HeapEntry::Node(id) => {
                let Some(node) = tree.node_ref(id) else {
                    continue;
                };
                if filter_set.filters_rect_with(&node.mbr(), k, false, &mut marks) {
                    refine_nodes.push(id);
                    continue;
                }
                if node.is_leaf() {
                    for entry in node.entries() {
                        heap.push(HeapItem {
                            dist: point_route_distance(&entry.point, query),
                            entry: HeapEntry::Stop(entry.data, entry.point),
                        });
                    }
                } else {
                    node.for_each_child(|child| {
                        heap.push(HeapItem {
                            dist: min_dist_query_rect(query, &child.mbr()),
                            entry: HeapEntry::Node(child.id()),
                        });
                    });
                }
            }
            HeapEntry::Stop(stop, point) => {
                if filter_set.filters_point_with(&point, k, false, &mut marks) {
                    continue;
                }
                filter_set.add(stop, point, routes.crossover(stop).to_vec(), query);
            }
        }
    }

    filter_set.finalize(query);
    FilterOutcome {
        filter_set,
        refine_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_rtree::RTreeConfig;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    /// A ladder of horizontal routes; the query runs along the middle.
    fn ladder(n_routes: usize) -> RouteStore {
        let routes: Vec<Vec<Point>> = (0..n_routes)
            .map(|i| {
                let y = i as f64 * 10.0;
                (0..8).map(|j| p(j as f64 * 10.0, y)).collect()
            })
            .collect();
        let (store, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), routes);
        store
    }

    fn mid_query() -> Vec<Point> {
        vec![p(0.0, 45.0), p(30.0, 45.0), p(70.0, 45.0)]
    }

    #[test]
    fn filter_set_is_much_smaller_than_the_route_set() {
        let store = ladder(20);
        let query = mid_query();
        let outcome = build_filter_set(&store, &query, 2);
        assert!(!outcome.filter_set.is_empty());
        assert!(
            outcome.filter_set.num_points() < store.num_stops() / 2,
            "filter set ({}) should be far smaller than the stop set ({})",
            outcome.filter_set.num_points(),
            store.num_stops()
        );
        assert!(outcome.filter_set.num_routes() >= 2);
        // Some far-away RR-tree nodes must have been pruned.
        assert!(!outcome.refine_nodes.is_empty());
    }

    #[test]
    fn filters_rect_is_sound_for_points_inside() {
        let store = ladder(12);
        let query = mid_query();
        let outcome = build_filter_set(&store, &query, 1);
        let fs = &outcome.filter_set;
        // A rectangle hugging the route at y = 0, far from the query at y = 45.
        let rect = Rect::new(p(10.0, -2.0), p(30.0, 2.0));
        for use_voronoi in [false, true] {
            if fs.filters_rect(&rect, 1, use_voronoi) {
                // Soundness: every sampled point of the rect must itself be filtered,
                // i.e. closer to some filter point than to the query.
                for sx in 0..=4 {
                    for sy in 0..=4 {
                        let pt = p(
                            rect.min.x + rect.width() * sx as f64 / 4.0,
                            rect.min.y + rect.height() * sy as f64 / 4.0,
                        );
                        let d_query = point_route_distance(&pt, &query);
                        let closer_exists = store
                            .routes()
                            .any(|r| point_route_distance(&pt, &r.points) <= d_query);
                        assert!(closer_exists);
                    }
                }
            }
        }
    }

    #[test]
    fn region_near_query_is_never_filtered() {
        let store = ladder(12);
        let query = mid_query();
        let outcome = build_filter_set(&store, &query, 1);
        // Points hugging the query route are closer to it than to any route
        // (routes are at y = 40 and y = 50, the query at y = 45).
        let near = p(35.0, 45.0);
        assert!(!outcome.filter_set.filters_point(&near, 1, false));
        assert!(!outcome.filter_set.filters_point(&near, 1, true));
        let near_rect = Rect::new(p(34.0, 44.5), p(36.0, 45.5));
        assert!(!outcome.filter_set.filters_rect(&near_rect, 1, true));
    }

    #[test]
    fn voronoi_filters_at_least_as_much_as_points_alone() {
        let store = ladder(16);
        let query = mid_query();
        let outcome = build_filter_set(&store, &query, 3);
        let fs = &outcome.filter_set;
        for i in 0..20 {
            for j in 0..20 {
                let rect = Rect::new(
                    p(i as f64 * 5.0 - 10.0, j as f64 * 8.0 - 10.0),
                    p(i as f64 * 5.0 - 6.0, j as f64 * 8.0 - 4.0),
                );
                if fs.filters_rect(&rect, 3, false) {
                    assert!(
                        fs.filters_rect(&rect, 3, true),
                        "voronoi step must not lose pruning power for {rect:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn higher_k_needs_more_filter_routes() {
        let store = ladder(20);
        let query = mid_query();
        let k1 = build_filter_set(&store, &query, 1);
        let k10 = build_filter_set(&store, &query, 10);
        assert!(k10.filter_set.num_points() >= k1.filter_set.num_points());
        assert!(k10.filter_set.num_routes() >= k1.filter_set.num_routes());
    }

    #[test]
    fn empty_inputs() {
        let store = RouteStore::default();
        let outcome = build_filter_set(&store, &mid_query(), 2);
        assert!(outcome.filter_set.is_empty());
        assert!(outcome.refine_nodes.is_empty());
        let store = ladder(3);
        let outcome = build_filter_set(&store, &[], 2);
        assert!(outcome.filter_set.is_empty());
        // k = 0 means everything is trivially filtered.
        let outcome = build_filter_set(&store, &mid_query(), 1);
        assert!(outcome.filter_set.filters_point(&p(0.0, 0.0), 0, false));
    }

    #[test]
    fn filter_points_sorted_by_crossover_size() {
        // Two routes crossing at one stop: that stop's crossover has size 2
        // and must come first after finalize.
        let mut store = RouteStore::default();
        store.insert_route(vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0)]);
        store.insert_route(vec![p(10.0, -10.0), p(10.0, 0.0), p(10.0, 10.0)]);
        store.insert_route(vec![p(0.0, 30.0), p(20.0, 30.0)]);
        let query = vec![p(0.0, 100.0), p(20.0, 100.0)];
        let outcome = build_filter_set(&store, &query, 3);
        let pts = outcome.filter_set.points();
        for w in pts.windows(2) {
            assert!(w[0].crossover.len() >= w[1].crossover.len());
        }
    }
}
