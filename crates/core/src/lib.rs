//! RkNNT query processing — the primary contribution of the paper.
//!
//! Given a route set `D_R` (indexed by a [`rknnt_index::RouteStore`]), a
//! transition set `D_T` (indexed by a [`rknnt_index::TransitionStore`]) and a
//! query route `Q`, an RkNNT query returns every transition that takes `Q`
//! as one of its k nearest routes (Definition 5). This crate provides four
//! interchangeable engines behind the [`RknnTEngine`] trait:
//!
//! | Engine | Paper section | Idea |
//! |---|---|---|
//! | [`BruteForceEngine`] | Sec. 1 (straw-man) | per-transition kNN check; also the correctness oracle for the test-suite |
//! | [`FilterRefineEngine`] | Sec. 4 | half-space filtering with a filter set chosen from the RR-tree, best-first pruning of the TR-tree, exact verification |
//! | [`VoronoiEngine`] | Sec. 5.1 | Filter–Refine plus the per-route Voronoi filtering space to enlarge the pruned region |
//! | [`DivideConquerEngine`] | Sec. 5.2 | one single-point RkNNT per query point, results unioned (Lemma 3) |
//!
//! All engines answer both ∃RkNNT and ∀RkNNT ([`Semantics`]), produce the
//! same result sets (verified extensively against the brute-force oracle in
//! the test-suite), and report per-phase timings used by the breakdown
//! figures of the evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod brute;
mod divide;
mod engine;
mod filter;
mod filter_refine;
mod footprint;
mod kind;
mod prune;
mod query;
mod scratch;
mod verify;

pub use brute::BruteForceEngine;
pub use divide::DivideConquerEngine;
pub use engine::RknnTEngine;
pub use filter::{build_filter_set, FilterOutcome, FilterSet};
pub use filter_refine::{FilterRefineEngine, VoronoiEngine};
pub use footprint::{FilterFootprint, FilterWitness};
pub use kind::EngineKind;
pub use prune::{prune_transitions, CandidateEndpoint, PruneOutcome};
pub use query::{PhaseTimings, QueryStats, RknntQuery, RknntResult, Semantics};
pub use scratch::{QueryScratch, RouteMarks};
pub use verify::{count_closer_routes, count_closer_routes_sq};
