//! The filter footprint: the spatial region and pruning witnesses a filter
//! step actually used, reported alongside results so a serving layer can
//! invalidate cached answers *surgically* under store churn.
//!
//! A cached RkNNT result changes only when an update lands where the query
//! can "see" it. The footprint captures two things the filter phase already
//! computed:
//!
//! * **`region`** — the query route's MBR expanded by the filter radius
//!   actually used (the distance to the farthest filter point chosen by
//!   Algorithm 2). This is the bounding region the filter step touched.
//! * **`witnesses`** — the filter points themselves, each with the crossover
//!   route set recorded at query time.
//!
//! The witnesses double as a *soundness certificate*: every distance in this
//! workspace is the vertex distance of Definition 3 (`min` over route
//! points), so for an arbitrary point `u`, a witness `f` on a still-live
//! route `r` with `|u - f|² < min_q |u - q|²` (strictly, over the query
//! vertices `q`) proves `r` is strictly closer to `u` than the query is —
//! the exact comparison [`crate::count_closer_routes_sq`] performs when it
//! scans the stop `f`. Once `k` distinct live routes are certified closer,
//! `u` cannot take the query as a kNN, no matter what else changed; a new
//! transition endpoint there provably cannot enter the cached result.
//! Routes inserted after the footprint was recorded are simply not counted,
//! which only makes the certificate more conservative, never unsound.

use crate::filter::FilterOutcome;
use rknnt_geo::{point_route_distance_sq, Point, Rect};
use rknnt_index::{RouteId, RouteStore};

/// One pruning witness: a filter point and the crossover route set it
/// carried when the filter set was built.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterWitness {
    /// Location of the filter point (a stop on every crossover route).
    pub point: Point,
    /// Routes passing through the point at filter-construction time.
    pub routes: Vec<RouteId>,
}

/// The region and witnesses a filter construction touched; see the module
/// documentation for the invalidation semantics.
///
/// `region`/`radius` are the coarse summary of the footprint (every witness
/// lies inside `region`, an invariant `from_outcome` checks); the serving
/// layer's eviction decisions use the `witnesses` directly, because a plain
/// "dirty rect intersects the region" test would be *unsound* in the keep
/// direction — a far-away point outside any bounded region can still gain a
/// qualifying transition when fewer than `k` routes lie beyond it — while
/// the certificate is point-precise in both directions.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterFootprint {
    /// Query route MBR expanded by [`FilterFootprint::radius`] — the
    /// bounding region the filter step touched, kept for observability and
    /// as the containment envelope of the witnesses.
    pub region: Rect,
    /// Vertex distance from the query to the farthest filter point used
    /// (0 for an empty filter set).
    pub radius: f64,
    /// The filter points with their recorded crossover sets — the data the
    /// invalidation certificate ([`FilterFootprint::covers_point`]) runs on.
    pub witnesses: Vec<FilterWitness>,
}

impl FilterFootprint {
    /// Derives the footprint of a completed filter construction for the
    /// query route it was built against.
    pub fn from_outcome(query: &[Point], outcome: &FilterOutcome) -> Self {
        let mut radius = 0.0f64;
        let witnesses: Vec<FilterWitness> = outcome
            .filter_set
            .points()
            .iter()
            .map(|fp| {
                let d = point_route_distance_sq(&fp.point, query).sqrt();
                if d.is_finite() {
                    radius = radius.max(d);
                }
                FilterWitness {
                    point: fp.point,
                    routes: fp.crossover.clone(),
                }
            })
            .collect();
        let region = Rect::from_points(query)
            .unwrap_or_else(Rect::empty)
            .expanded(radius);
        debug_assert!(
            witnesses
                .iter()
                .all(|w| !w.point.is_finite() || region.contains_point(&w.point)),
            "every finite witness must lie inside the recorded region"
        );
        FilterFootprint {
            region,
            radius,
            witnesses,
        }
    }

    /// Runs a fresh filter construction for `(query, k)` and returns its
    /// footprint — for callers whose engine did not build one itself.
    pub fn compute(routes: &RouteStore, query: &[Point], k: usize) -> Self {
        Self::from_outcome(query, &crate::filter::build_filter_set(routes, query, k))
    }

    /// Whether `u` is certified covered: at least `k` *distinct* routes that
    /// are still live (per `route_live`) have a witness strictly closer to
    /// `u` than every query vertex is. See the module documentation for why
    /// this is sound against the exact verification arithmetic.
    pub fn covers_point<F>(&self, query: &[Point], u: &Point, k: usize, route_live: F) -> bool
    where
        F: Fn(RouteId) -> bool,
    {
        self.covers_point_with(query, u, k, route_live, &mut Vec::new())
    }

    /// [`FilterFootprint::covers_point`] on a caller-provided covering
    /// buffer (cleared on entry, capacity kept), so retention scans that
    /// certify many endpoints — the cache invalidation and subscription
    /// classification paths — stop allocating per endpoint tested.
    pub fn covers_point_with<F>(
        &self,
        query: &[Point],
        u: &Point,
        k: usize,
        route_live: F,
        covering: &mut Vec<RouteId>,
    ) -> bool
    where
        F: Fn(RouteId) -> bool,
    {
        if k == 0 {
            return true;
        }
        covering.clear();
        let threshold_sq = point_route_distance_sq(u, query);
        for w in &self.witnesses {
            if w.point.distance_sq(u) < threshold_sq {
                for r in &w.routes {
                    if !covering.contains(r) && route_live(*r) {
                        covering.push(*r);
                        if covering.len() >= k {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Whether *every* point of `rect` is certified covered: at least `k`
    /// distinct live routes each have a witness strictly closer to the whole
    /// rectangle than the query can ever be to any point of it.
    ///
    /// Per witness `w` the rectangle-level comparison is
    /// `MaxDist(rect, w)² < min_q MinDist(rect, q)²`, which implies the
    /// point-level `|w − u|² < min_q |u − q|²` for every `u ∈ rect`, so
    /// `covers_rect` ⇒ [`FilterFootprint::covers_point`] pointwise. The
    /// sharded router uses this as a *registration* bound (a subscription
    /// need not register on a shard whose territory is fully covered); with
    /// fewer than `k` live witness routes it never certifies anything.
    pub fn covers_rect<F>(&self, query: &[Point], rect: &Rect, k: usize, route_live: F) -> bool
    where
        F: Fn(RouteId) -> bool,
    {
        if k == 0 {
            return true;
        }
        if rect.is_empty() {
            // An empty territory holds no point that could need covering.
            return true;
        }
        let threshold_sq = query
            .iter()
            .map(|q| rect.min_dist_sq(q))
            .fold(f64::INFINITY, f64::min);
        let mut covering: Vec<RouteId> = Vec::new();
        for w in &self.witnesses {
            if rect.max_dist_sq(&w.point) < threshold_sq {
                for r in &w.routes {
                    if !covering.contains(r) && route_live(*r) {
                        covering.push(*r);
                        if covering.len() >= k {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_rtree::RTreeConfig;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn ladder(n_routes: usize) -> RouteStore {
        let routes: Vec<Vec<Point>> = (0..n_routes)
            .map(|i| {
                let y = i as f64 * 10.0;
                (0..8).map(|j| p(j as f64 * 10.0, y)).collect()
            })
            .collect();
        let (store, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), routes);
        store
    }

    #[test]
    fn region_contains_query_and_all_witnesses_bound_the_radius() {
        let store = ladder(12);
        let query = vec![p(0.0, 45.0), p(30.0, 45.0), p(70.0, 45.0)];
        let fp = FilterFootprint::compute(&store, &query, 2);
        assert!(!fp.witnesses.is_empty());
        assert!(fp.radius > 0.0);
        for q in &query {
            assert!(fp.region.contains_point(q));
        }
        for w in &fp.witnesses {
            let d = point_route_distance_sq(&w.point, &query).sqrt();
            assert!(d <= fp.radius + 1e-9);
            assert!(!w.routes.is_empty());
        }
    }

    #[test]
    fn coverage_is_sound_against_the_route_scan() {
        // Wherever the certificate claims coverage, at least k routes really
        // are strictly closer (vertex distance) than the query.
        let store = ladder(10);
        let query = vec![p(0.0, 45.0), p(35.0, 45.0), p(70.0, 45.0)];
        let k = 2;
        let fp = FilterFootprint::compute(&store, &query, k);
        for i in -5..20 {
            for j in -5..20 {
                let u = p(i as f64 * 6.0, j as f64 * 7.0);
                if fp.covers_point(&query, &u, k, |_| true) {
                    let d_query = point_route_distance_sq(&u, &query);
                    let closer = store
                        .routes()
                        .filter(|r| point_route_distance_sq(&u, &r.points) < d_query)
                        .count();
                    assert!(closer >= k, "certificate overclaimed at {u}");
                }
            }
        }
    }

    #[test]
    fn dead_routes_do_not_count_as_witnesses() {
        let store = ladder(4);
        let query = vec![p(0.0, 100.0), p(70.0, 100.0)];
        let fp = FilterFootprint::compute(&store, &query, 4);
        let u = p(35.0, 0.0); // far from the query, near the routes
        assert!(fp.covers_point(&query, &u, 4, |_| true));
        // Declaring every route dead removes all certificates.
        assert!(!fp.covers_point(&query, &u, 1, |_| false));
        // k = 0 is trivially covered.
        assert!(fp.covers_point(&query, &u, 0, |_| false));
    }

    #[test]
    fn rect_coverage_implies_pointwise_coverage() {
        let store = ladder(10);
        let query = vec![p(0.0, 45.0), p(35.0, 45.0), p(70.0, 45.0)];
        let k = 2;
        let fp = FilterFootprint::compute(&store, &query, k);
        let mut certified = 0;
        for i in -3..12 {
            for j in -3..12 {
                let min = p(i as f64 * 8.0, j as f64 * 8.0);
                let rect = Rect::new(min, p(min.x + 6.0, min.y + 6.0));
                if !fp.covers_rect(&query, &rect, k, |_| true) {
                    continue;
                }
                certified += 1;
                // Sample the rectangle: every sampled point must be covered
                // by the point-level certificate too.
                for sx in 0..4 {
                    for sy in 0..4 {
                        let u = p(rect.min.x + sx as f64 * 2.0, rect.min.y + sy as f64 * 2.0);
                        assert!(
                            fp.covers_point(&query, &u, k, |_| true),
                            "rect certificate overclaimed at {u}"
                        );
                    }
                }
            }
        }
        assert!(certified > 0, "expected some rect to be certified");
    }

    #[test]
    fn rect_coverage_needs_k_live_witness_routes() {
        let store = ladder(4);
        let query = vec![p(0.0, 100.0), p(70.0, 100.0)];
        let fp = FilterFootprint::compute(&store, &query, 4);
        let rect = Rect::new(p(20.0, 10.0), p(40.0, 20.0));
        assert!(fp.covers_rect(&query, &rect, 4, |_| true));
        // Killing every witness route withdraws the certificate; fewer than
        // k live routes can never cover.
        assert!(!fp.covers_rect(&query, &rect, 1, |_| false));
        assert!(fp.covers_rect(&query, &rect, 0, |_| false));
        // Empty territories are trivially covered.
        assert!(fp.covers_rect(&query, &Rect::empty(), 4, |_| true));
    }

    #[test]
    fn degenerate_inputs_have_empty_footprints() {
        let store = RouteStore::default();
        let fp = FilterFootprint::compute(&store, &[p(0.0, 0.0), p(1.0, 0.0)], 3);
        assert!(fp.witnesses.is_empty());
        assert_eq!(fp.radius, 0.0);
        assert!(!fp.covers_point(&[p(0.0, 0.0)], &p(5.0, 5.0), 1, |_| true));
    }
}
