//! The engine trait shared by all RkNNT query processors.

use crate::footprint::FilterFootprint;
use crate::query::{RknntQuery, RknntResult};
use crate::scratch::QueryScratch;

/// A query processor able to answer RkNNT queries over a fixed pair of
/// route / transition stores.
///
/// All engines must return exactly the same set of transitions for the same
/// query (they differ only in how much work they do); this is asserted by the
/// cross-engine equivalence tests in `tests/` and by the property tests
/// against the brute-force oracle.
///
/// Engines are `Send + Sync`: they hold only shared references into the
/// stores plus immutable per-engine indexes (the NList), so the serving
/// layer can execute queries against one engine from many worker threads,
/// or build one engine per worker inside a [`std::thread::scope`].
pub trait RknnTEngine: Send + Sync {
    /// Human-readable engine name used in benchmark output
    /// ("Filter-Refine", "Voronoi", "Divide-Conquer", "BruteForce").
    fn name(&self) -> &'static str;

    /// Executes the query and returns the qualifying transitions together
    /// with phase timings and work counters.
    fn execute(&self, query: &RknntQuery) -> RknntResult;

    /// Executes the query on a caller-provided [`QueryScratch`], reusing its
    /// buffers instead of allocating per-call state. Byte-identical results
    /// to [`RknnTEngine::execute`]; the default implementation simply
    /// ignores the scratch for engines with no per-candidate state (e.g.
    /// brute force). The serving layer owns one scratch per worker and
    /// threads it through every query the worker runs.
    fn execute_scratch(&self, query: &RknntQuery, scratch: &mut QueryScratch) -> RknntResult {
        let _ = scratch;
        self.execute(query)
    }

    /// Scratch-reusing form of [`RknnTEngine::execute_with_footprint`].
    fn execute_with_footprint_scratch(
        &self,
        query: &RknntQuery,
        scratch: &mut QueryScratch,
    ) -> (RknntResult, Option<FilterFootprint>) {
        (self.execute_scratch(query, scratch), None)
    }

    /// Executes the query and also reports the [`FilterFootprint`] of the
    /// filter construction the execution used, when the engine builds one.
    ///
    /// Serving layers that keep *standing* queries current under store churn
    /// (result caches, continuous-query monitors) need the footprint next to
    /// every freshly computed result so later updates can be classified as
    /// affecting it or not. Engines without a filter phase (brute force,
    /// divide & conquer) return `None` and the caller falls back to
    /// [`FilterFootprint::compute`]; the result is byte-identical to
    /// [`RknnTEngine::execute`] either way.
    fn execute_with_footprint(&self, query: &RknntQuery) -> (RknntResult, Option<FilterFootprint>) {
        (self.execute(query), None)
    }
}
