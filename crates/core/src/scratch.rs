//! Reusable per-worker scratch state for the query hot path.
//!
//! Every RkNNT verification call counts *distinct* routes; the obvious
//! per-call `HashSet<RouteId>` makes the paper's filter-and-refine loop
//! allocation-bound before it is distance-bound. [`QueryScratch`] replaces
//! those per-call structures with buffers a worker owns and reuses across
//! queries: an epoch-stamped mark table over the dense route-id space
//! ([`RouteMarks`]), a traversal stack of [`NodeId`]s, the candidate buffer
//! of the pruning phase, and the per-transition grouping maps of the
//! verification phase. After the first few queries warm the buffers up, the
//! per-candidate path performs zero heap allocations (asserted by the
//! allocation-counter test in `tests/hot_path_alloc.rs`).
//!
//! # Ownership rules
//!
//! A `QueryScratch` belongs to exactly one worker and is threaded through
//! calls by `&mut` — it is never shared between threads or interleaved
//! between two in-flight queries. The batch service creates one per worker
//! per batch; the engines' plain `execute` entry points create a throwaway
//! one so results never depend on whether scratch was reused.
//!
//! # Why epoch stamping is sound
//!
//! `RouteMarks` stores one `u32` stamp per route slot; a route is "marked"
//! iff its stamp equals the current epoch. [`RouteMarks::begin`] bumps the
//! epoch, which unmarks everything in O(1) — no clearing loop, no
//! allocation. Stale stamps from earlier epochs can never alias the current
//! epoch until the counter wraps around after 2³² `begin` calls; at the
//! wrap, `begin` zeroes the whole table once and restarts at epoch 1, so a
//! stamp written 2³² epochs ago can never be mistaken for a current mark.
//! The wrap path is exercised in tests via [`RouteMarks::force_epoch_wrap`].

use crate::prune::CandidateEndpoint;
use rknnt_geo::Point;
use rknnt_index::{EndpointKind, NList, RouteId, RouteStore, TransitionId};
use rknnt_rtree::NodeId;
use std::collections::HashMap;

/// Epoch-stamped membership marks over the dense route-id space — the
/// allocation-free replacement for a per-call `HashSet<RouteId>`.
///
/// The table grows lazily to the highest route index it sees (allocation
/// happens only until the table is warmed to the store's
/// [`RouteStore::route_id_bound`]); every later reuse is allocation-free.
#[derive(Debug, Clone)]
pub struct RouteMarks {
    /// Current epoch; `stamps[i] == epoch` means route slot `i` is marked.
    epoch: u32,
    /// One stamp per route slot, indexed by `RouteId::index()`.
    stamps: Vec<u32>,
    /// Number of distinct routes marked this epoch.
    marked: usize,
}

impl Default for RouteMarks {
    fn default() -> Self {
        // Epoch 1 with an all-zero table: nothing is marked even before the
        // first `begin`, so a missing `begin` can under-count but never
        // resurrect marks from a previous use.
        RouteMarks {
            epoch: 1,
            stamps: Vec::new(),
            marked: 0,
        }
    }
}

impl RouteMarks {
    /// Starts a fresh distinct-route count, unmarking everything in O(1).
    #[inline]
    pub fn begin(&mut self) {
        self.marked = 0;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One full u32 wrap: stamps written 2^32 epochs ago could now
            // alias the restarted counter, so clear them all once and resume
            // at epoch 1. Amortised over 2^32 reuses this is free.
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    /// Marks `route`; returns `true` when it was not yet marked this epoch
    /// (i.e. the distinct count just grew).
    #[inline]
    pub fn mark(&mut self, route: RouteId) -> bool {
        let i = route.index();
        if i >= self.stamps.len() {
            // Lazy growth: only until the table covers the store's route-id
            // bound, then never again.
            self.stamps.resize(i + 1, 0);
        }
        if self.stamps[i] == self.epoch {
            return false;
        }
        self.stamps[i] = self.epoch;
        self.marked += 1;
        true
    }

    /// Whether `route` is marked in the current epoch.
    #[inline]
    pub fn contains(&self, route: RouteId) -> bool {
        self.stamps.get(route.index()) == Some(&self.epoch)
    }

    /// Number of distinct routes marked since the last [`RouteMarks::begin`].
    #[inline]
    pub fn count(&self) -> usize {
        self.marked
    }

    /// Pre-grows the stamp table to cover `bound` route slots so the first
    /// marks after warm-up never allocate.
    pub fn reserve(&mut self, bound: usize) {
        if bound > self.stamps.len() {
            self.stamps.resize(bound, 0);
        }
    }

    /// Forces the epoch counter to the wrap boundary so the *next*
    /// [`RouteMarks::begin`] exercises the 2³²-reuse rollover path without
    /// 2³² real calls. Exposed for the property tests; harmless otherwise
    /// (it only makes the next `begin` clear the table).
    pub fn force_epoch_wrap(&mut self) {
        self.epoch = u32::MAX;
    }
}

/// Reusable buffers for one worker's query execution — see the module
/// documentation for the ownership rules.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Distinct-route counting for verification and `IsFiltered`.
    pub(crate) marks: RouteMarks,
    /// R-tree traversal stack (RR-tree in verification, TR-tree in pruning).
    pub(crate) node_stack: Vec<NodeId>,
    /// Surviving candidate endpoints of the pruning phase.
    pub(crate) candidates: Vec<CandidateEndpoint>,
    /// Per-transition (origin qualified, destination qualified) grouping of
    /// the verification phase; cleared (capacity kept) per query.
    pub(crate) per_transition: HashMap<TransitionId, (bool, bool)>,
    /// Endpoint union of the divide & conquer engine's per-point passes.
    pub(crate) union: HashMap<(TransitionId, EndpointKind), Point>,
}

impl QueryScratch {
    /// Creates empty scratch; buffers grow to their steady-state sizes over
    /// the first queries and are reused from then on.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scratch-based twin of [`crate::count_closer_routes_sq`]: identical
    /// result (count capped at `limit`, same early-exit behaviour), but the
    /// distinct-route set and traversal stack live in `self` so repeated
    /// calls stop allocating once warmed.
    pub fn count_closer_routes_sq(
        &mut self,
        routes: &RouteStore,
        nlist: &NList,
        t: &Point,
        threshold_sq: f64,
        limit: usize,
    ) -> usize {
        crate::verify::count_closer_routes_sq_scratch(
            routes,
            nlist,
            t,
            threshold_sq,
            limit,
            &mut self.marks,
            &mut self.node_stack,
        )
    }

    /// Pre-grows the route-mark table for a store (optional; the table also
    /// grows lazily on first use).
    pub fn reserve_for(&mut self, routes: &RouteStore) {
        self.marks.reserve(routes.route_id_bound());
    }

    /// Test hook: forces the next distinct-route count to take the epoch
    /// rollover path. See [`RouteMarks::force_epoch_wrap`].
    pub fn force_epoch_wrap(&mut self) {
        self.marks.force_epoch_wrap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_count_distinct_routes_per_epoch() {
        let mut marks = RouteMarks::default();
        marks.begin();
        assert!(marks.mark(RouteId(3)));
        assert!(!marks.mark(RouteId(3)), "second mark is not distinct");
        assert!(marks.mark(RouteId(0)));
        assert_eq!(marks.count(), 2);
        assert!(marks.contains(RouteId(3)));
        assert!(!marks.contains(RouteId(7)));
        // A new epoch unmarks everything without touching the table.
        marks.begin();
        assert_eq!(marks.count(), 0);
        assert!(!marks.contains(RouteId(3)));
        assert!(marks.mark(RouteId(3)));
    }

    #[test]
    fn forced_epoch_wrap_clears_stale_stamps() {
        let mut marks = RouteMarks::default();
        marks.begin();
        marks.mark(RouteId(5));
        marks.force_epoch_wrap();
        // The wrap's next `begin` resets the table and restarts at epoch 1;
        // the stale stamp for route 5 must not leak into the new epoch.
        marks.begin();
        assert_eq!(marks.count(), 0);
        assert!(!marks.contains(RouteId(5)));
        assert!(marks.mark(RouteId(5)));
        assert_eq!(marks.count(), 1);
        // And the epoch keeps working normally afterwards.
        marks.begin();
        assert!(!marks.contains(RouteId(5)));
    }

    #[test]
    fn reserve_pre_grows_without_marking() {
        let mut marks = RouteMarks::default();
        marks.reserve(100);
        marks.begin();
        assert_eq!(marks.count(), 0);
        assert!(!marks.contains(RouteId(99)));
        assert!(marks.mark(RouteId(99)));
    }
}
