//! Engine selection by value: the [`EngineKind`] enum and its factory.
//!
//! The serving layer executes batches across worker threads, and every
//! worker needs to construct its own engine over borrowed stores (engines
//! hold per-engine indexes such as the NList, which are cheap relative to a
//! batch but not sharable mid-build). [`EngineKind::build`] is the
//! universally-quantified constructor path that makes this possible: it
//! works for *any* borrow lifetime, so a worker inside a
//! [`std::thread::scope`] can call it on references captured by the scope.

use crate::brute::BruteForceEngine;
use crate::divide::DivideConquerEngine;
use crate::engine::RknnTEngine;
use crate::filter_refine::{FilterRefineEngine, VoronoiEngine};
use rknnt_index::{RouteStore, TransitionStore};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The four interchangeable RkNNT engines, as a value.
///
/// `Ord` follows declaration order; the serving layer relies on it only for
/// deterministic group ordering, never for semantics.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum EngineKind {
    /// Per-transition kNN check without index support (the oracle).
    BruteForce,
    /// Half-space filtering + best-first pruning + exact verification.
    FilterRefine,
    /// Filter–Refine with the per-route Voronoi filtering spaces.
    Voronoi,
    /// One single-point RkNNT per query point, results unioned (Lemma 3).
    #[default]
    DivideConquer,
}

impl EngineKind {
    /// All four kinds, in oracle-first order (handy for exhaustive tests).
    pub const ALL: [EngineKind; 4] = [
        EngineKind::BruteForce,
        EngineKind::FilterRefine,
        EngineKind::Voronoi,
        EngineKind::DivideConquer,
    ];

    /// The engine's display name, matching [`RknnTEngine::name`].
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::BruteForce => "BruteForce",
            EngineKind::FilterRefine => "Filter-Refine",
            EngineKind::Voronoi => "Voronoi",
            EngineKind::DivideConquer => "Divide-Conquer",
        }
    }

    /// Builds an engine of this kind over the given stores.
    ///
    /// The signature is universally quantified over the borrow lifetime
    /// (`for<'a>`), so callers can construct engines inside scoped worker
    /// threads over references captured by the scope.
    pub fn build<'a>(
        self,
        routes: &'a RouteStore,
        transitions: &'a TransitionStore,
    ) -> Box<dyn RknnTEngine + 'a> {
        match self {
            EngineKind::BruteForce => Box::new(BruteForceEngine::new(routes, transitions)),
            EngineKind::FilterRefine => Box::new(FilterRefineEngine::new(routes, transitions)),
            EngineKind::Voronoi => Box::new(VoronoiEngine::new(routes, transitions)),
            EngineKind::DivideConquer => Box::new(DivideConquerEngine::new(routes, transitions)),
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EngineKind::BruteForce => "brute-force",
            EngineKind::FilterRefine => "filter-refine",
            EngineKind::Voronoi => "voronoi",
            EngineKind::DivideConquer => "divide-conquer",
        })
    }
}

impl FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "brute-force" | "bruteforce" | "brute" => Ok(EngineKind::BruteForce),
            "filter-refine" | "filterrefine" | "fr" => Ok(EngineKind::FilterRefine),
            "voronoi" | "vo" => Ok(EngineKind::Voronoi),
            "divide-conquer" | "divideconquer" | "dc" => Ok(EngineKind::DivideConquer),
            other => Err(format!(
                "unknown engine {other:?}; expected brute-force, filter-refine, voronoi or divide-conquer"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_geo::Point;

    #[test]
    fn roundtrips_through_display_and_fromstr() {
        for kind in EngineKind::ALL {
            let parsed: EngineKind = kind.to_string().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert_eq!(
            "dc".parse::<EngineKind>().unwrap(),
            EngineKind::DivideConquer
        );
        assert!("nearest".parse::<EngineKind>().is_err());
    }

    #[test]
    fn build_produces_matching_names() {
        let routes = RouteStore::default();
        let transitions = TransitionStore::default();
        for kind in EngineKind::ALL {
            let engine = kind.build(&routes, &transitions);
            assert_eq!(engine.name(), kind.name());
        }
    }

    #[test]
    fn built_engines_are_usable_from_scoped_threads() {
        let mut routes = RouteStore::default();
        routes.insert_route(vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)]);
        let mut transitions = TransitionStore::default();
        transitions
            .insert(Point::new(1.0, 1.0), Point::new(9.0, 1.0))
            .unwrap();
        std::thread::scope(|scope| {
            for kind in EngineKind::ALL {
                let (r, t) = (&routes, &transitions);
                scope.spawn(move || {
                    let engine = kind.build(r, t);
                    let q = crate::RknntQuery::exists(vec![Point::new(5.0, 1.0)], 1);
                    let _ = engine.execute(&q);
                });
            }
        });
    }
}
