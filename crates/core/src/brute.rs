//! The brute-force engine: a kNN check per transition, with no index support.
//!
//! Section 1 of the paper describes the straightforward method — "conduct a
//! kNN search for every transition, and then check the resulting ranked lists
//! to see whether the query is a kNN" — and argues it is intractable at
//! scale. We implement it both as the naïve comparator for the benchmarks and
//! as the *correctness oracle* for the test-suite: it scans every route for
//! every transition endpoint and therefore shares no code with the
//! filter-and-refine machinery it validates.

use crate::engine::RknnTEngine;
use crate::query::{PhaseTimings, QueryStats, RknntQuery, RknntResult, Semantics};
use rknnt_geo::{point_route_distance, Point};
use rknnt_index::{RouteStore, TransitionStore};
use std::time::Instant;

/// Brute-force RkNNT: for every transition endpoint, scan every route and
/// count how many are strictly closer than the query.
pub struct BruteForceEngine<'a> {
    routes: &'a RouteStore,
    transitions: &'a TransitionStore,
}

impl<'a> BruteForceEngine<'a> {
    /// Creates a brute-force engine over the given stores.
    pub fn new(routes: &'a RouteStore, transitions: &'a TransitionStore) -> Self {
        BruteForceEngine {
            routes,
            transitions,
        }
    }

    /// Does `t` take the query route as one of its k nearest routes?
    fn endpoint_qualifies(&self, t: &Point, query: &[Point], k: usize) -> bool {
        let d_query = point_route_distance(t, query);
        let mut closer = 0usize;
        for route in self.routes.routes() {
            if point_route_distance(t, &route.points) < d_query {
                closer += 1;
                if closer >= k {
                    return false;
                }
            }
        }
        true
    }
}

impl RknnTEngine for BruteForceEngine<'_> {
    fn name(&self) -> &'static str {
        "BruteForce"
    }

    fn execute(&self, query: &RknntQuery) -> RknntResult {
        let started = Instant::now();
        let mut result = RknntResult::default();
        if query.is_degenerate() {
            return result;
        }
        let mut verified_endpoints = 0usize;
        for transition in self.transitions.transitions() {
            let origin_ok = self.endpoint_qualifies(&transition.origin, &query.route, query.k);
            let dest_ok = self.endpoint_qualifies(&transition.destination, &query.route, query.k);
            verified_endpoints += usize::from(origin_ok) + usize::from(dest_ok);
            let qualifies = match query.semantics {
                Semantics::Exists => origin_ok || dest_ok,
                Semantics::ForAll => origin_ok && dest_ok,
            };
            if qualifies {
                result.transitions.push(transition.id);
            }
        }
        result.transitions.sort_unstable();
        result.stats = QueryStats {
            candidate_endpoints: self.transitions.len() * 2,
            verified_endpoints,
            result_transitions: result.transitions.len(),
            ..QueryStats::default()
        };
        result.timings = PhaseTimings {
            filtering: std::time::Duration::ZERO,
            verification: started.elapsed(),
        };
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_rtree::RTreeConfig;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    /// The running example of Figure 3, reduced to two horizontal routes and
    /// a vertical query between them, with transitions placed so the answers
    /// are unambiguous.
    fn small_world() -> (RouteStore, TransitionStore) {
        let (routes, _) = RouteStore::bulk_build(
            RTreeConfig::new(8, 3),
            vec![
                // R0: along y = 0
                vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0), p(30.0, 0.0)],
                // R1: along y = 100
                vec![
                    p(0.0, 100.0),
                    p(10.0, 100.0),
                    p(20.0, 100.0),
                    p(30.0, 100.0),
                ],
            ],
        );
        let mut transitions = TransitionStore::default();
        // T0: both endpoints near the middle (y = 50) — closest to the query.
        transitions.insert(p(5.0, 48.0), p(25.0, 52.0)).unwrap();
        // T1: both endpoints near R0.
        transitions.insert(p(5.0, 2.0), p(25.0, 1.0)).unwrap();
        // T2: origin near the middle, destination near R1.
        transitions.insert(p(15.0, 47.0), p(15.0, 98.0)).unwrap();
        (routes, transitions)
    }

    /// The query route runs along y = 50, right through the middle.
    fn mid_query(k: usize, semantics: Semantics) -> RknntQuery {
        RknntQuery {
            route: vec![p(0.0, 50.0), p(15.0, 50.0), p(30.0, 50.0)],
            k,
            semantics,
        }
    }

    #[test]
    fn exists_semantics_small_world() {
        let (routes, transitions) = small_world();
        let engine = BruteForceEngine::new(&routes, &transitions);
        let result = engine.execute(&mid_query(1, Semantics::Exists));
        // T0: both endpoints take the query as nearest (distance ~2 vs ~48).
        // T1: both endpoints are far closer to R0 -> excluded.
        // T2: origin (y=47) prefers the query; destination (y=98) prefers R1,
        //     but ∃ semantics only needs one endpoint.
        let ids: Vec<u32> = result.transitions.iter().map(|t| t.raw()).collect();
        assert_eq!(ids, vec![0, 2]);
        assert_eq!(result.stats.result_transitions, 2);
    }

    #[test]
    fn forall_semantics_is_subset() {
        let (routes, transitions) = small_world();
        let engine = BruteForceEngine::new(&routes, &transitions);
        let exists = engine.execute(&mid_query(1, Semantics::Exists));
        let forall = engine.execute(&mid_query(1, Semantics::ForAll));
        // Lemma 1: ∀RkNNT ⊆ ∃RkNNT.
        for id in &forall.transitions {
            assert!(exists.contains(*id));
        }
        let ids: Vec<u32> = forall.transitions.iter().map(|t| t.raw()).collect();
        assert_eq!(ids, vec![0], "only T0 has both endpoints qualifying");
    }

    #[test]
    fn larger_k_admits_more_transitions() {
        let (routes, transitions) = small_world();
        let engine = BruteForceEngine::new(&routes, &transitions);
        let k1 = engine.execute(&mid_query(1, Semantics::Exists));
        let k3 = engine.execute(&mid_query(3, Semantics::Exists));
        // With k = 3 (>= number of routes) every transition qualifies.
        assert!(k3.len() >= k1.len());
        assert_eq!(k3.len(), transitions.len());
    }

    #[test]
    fn degenerate_queries_return_empty() {
        let (routes, transitions) = small_world();
        let engine = BruteForceEngine::new(&routes, &transitions);
        assert!(engine.execute(&RknntQuery::exists(vec![], 3)).is_empty());
        assert!(engine
            .execute(&RknntQuery::exists(vec![p(0.0, 50.0)], 0))
            .is_empty());
        assert_eq!(engine.name(), "BruteForce");
    }
}
