//! The Filter–Refine engine (Section 4) and its Voronoi-enhanced variant
//! (Section 5.1).

use crate::engine::RknnTEngine;
use crate::filter::{build_filter_set, FilterOutcome};
use crate::prune::prune_transitions_scratch;
use crate::query::{PhaseTimings, QueryStats, RknntQuery, RknntResult, Semantics};
use crate::scratch::QueryScratch;
use crate::verify::qualifies;
use rknnt_geo::point_route_distance_sq;
use rknnt_index::{EndpointKind, NList, RouteStore, TransitionStore};
use std::time::Instant;

/// The three-step processing framework of Algorithm 1:
/// `FilterRoute` → `PruneTransition` → `RefineCandidates`.
pub struct FilterRefineEngine<'a> {
    routes: &'a RouteStore,
    transitions: &'a TransitionStore,
    nlist: NList,
    use_voronoi: bool,
}

impl<'a> FilterRefineEngine<'a> {
    /// Creates the basic Filter–Refine engine (no Voronoi enlargement).
    ///
    /// The NList is built once at construction; recreate the engine after
    /// mutating the route store so the NList stays consistent.
    pub fn new(routes: &'a RouteStore, transitions: &'a TransitionStore) -> Self {
        FilterRefineEngine {
            routes,
            transitions,
            nlist: NList::build(routes),
            use_voronoi: false,
        }
    }

    /// Creates the engine with the Voronoi filtering optimisation enabled.
    pub fn with_voronoi(routes: &'a RouteStore, transitions: &'a TransitionStore) -> Self {
        FilterRefineEngine {
            use_voronoi: true,
            ..Self::new(routes, transitions)
        }
    }

    /// Whether the Voronoi-based filtering step is enabled.
    pub fn uses_voronoi(&self) -> bool {
        self.use_voronoi
    }

    /// Shared access to the stores (used by the divide & conquer engine and
    /// by the benchmark harness).
    pub fn stores(&self) -> (&'a RouteStore, &'a TransitionStore) {
        (self.routes, self.transitions)
    }

    /// Builds the filter set for a query (phase 1 of Algorithm 1) without
    /// running the rest of the pipeline.
    ///
    /// The outcome depends only on `(query.route, query.k)` — not on the
    /// semantics — so the serving layer builds it once per distinct
    /// `(route, k)` in a batch and replays it through
    /// [`FilterRefineEngine::execute_with_filter`] for every query sharing
    /// the pair.
    pub fn build_filter(&self, query: &RknntQuery) -> FilterOutcome {
        build_filter_set(self.routes, &query.route, query.k)
    }

    /// Reports the [`crate::FilterFootprint`] of a filter construction —
    /// the region and pruning witnesses the filter step for this query
    /// actually used. The serving layer records it next to cached results
    /// so store updates can invalidate only the entries they can affect.
    pub fn footprint_for(
        &self,
        query: &RknntQuery,
        outcome: &crate::FilterOutcome,
    ) -> crate::FilterFootprint {
        crate::FilterFootprint::from_outcome(&query.route, outcome)
    }

    /// Executes the prune + verify phases against a pre-built filter
    /// outcome.
    ///
    /// `filter_outcome` **must** have been built for this query's
    /// `(route, k)` pair (e.g. by [`FilterRefineEngine::build_filter`]);
    /// reusing a filter set across different routes or k values is unsound.
    /// Given that precondition, the returned transition set is byte-identical
    /// to [`RknnTEngine::execute`]'s — the pipeline is deterministic — which
    /// is what lets the batch service share filter construction across
    /// queries without changing any answer. Reported filtering time covers
    /// only the pruning done here; callers amortising one construction over
    /// several queries account for the construction time themselves.
    pub fn execute_with_filter(
        &self,
        query: &RknntQuery,
        filter_outcome: &FilterOutcome,
    ) -> RknntResult {
        self.execute_with_filter_scratch(query, filter_outcome, &mut QueryScratch::new())
    }

    /// [`FilterRefineEngine::execute_with_filter`] on a caller-provided
    /// [`QueryScratch`]: the pruning traversal, the `IsFiltered` route
    /// counts, the candidate buffer, the verification traversals and the
    /// per-transition grouping all reuse the scratch's buffers, so after the
    /// scratch is warmed the per-candidate path performs zero heap
    /// allocations. Results are byte-identical to the allocating wrapper.
    pub fn execute_with_filter_scratch(
        &self,
        query: &RknntQuery,
        filter_outcome: &FilterOutcome,
        scratch: &mut QueryScratch,
    ) -> RknntResult {
        let mut result = RknntResult::default();
        if query.is_degenerate() {
            return result;
        }
        let QueryScratch {
            marks,
            node_stack,
            candidates,
            per_transition,
            ..
        } = scratch;

        // Phase 2: transition pruning against the supplied filter set.
        let prune_started = Instant::now();
        let pruned_nodes = prune_transitions_scratch(
            self.transitions,
            &filter_outcome.filter_set,
            query.k,
            self.use_voronoi,
            marks,
            node_stack,
            candidates,
        );
        let filtering = prune_started.elapsed();

        // Phase 3: exact verification of the surviving endpoints.
        let verify_started = Instant::now();
        per_transition.clear();
        let mut verified_endpoints = 0usize;
        for cand in candidates.iter() {
            let threshold_sq = point_route_distance_sq(&cand.point, &query.route);
            let ok = qualifies(
                self.routes,
                &self.nlist,
                &cand.point,
                threshold_sq,
                query.k,
                marks,
                node_stack,
            );
            if ok {
                verified_endpoints += 1;
            }
            let entry = per_transition
                .entry(cand.transition)
                .or_insert((false, false));
            match cand.kind {
                EndpointKind::Origin => entry.0 |= ok,
                EndpointKind::Destination => entry.1 |= ok,
            }
        }
        result.transitions.reserve_exact(per_transition.len());
        for (id, (origin_ok, dest_ok)) in per_transition.iter() {
            let include = match query.semantics {
                Semantics::Exists => *origin_ok || *dest_ok,
                Semantics::ForAll => *origin_ok && *dest_ok,
            };
            if include {
                result.transitions.push(*id);
            }
        }
        result.transitions.sort_unstable();
        let verification = verify_started.elapsed();

        result.timings = PhaseTimings {
            filtering,
            verification,
        };
        result.stats = QueryStats {
            filter_points: filter_outcome.filter_set.num_points(),
            filter_routes: filter_outcome.filter_set.num_routes(),
            refine_nodes: filter_outcome.refine_nodes.len(),
            pruned_tr_nodes: pruned_nodes,
            candidate_endpoints: candidates.len(),
            verified_endpoints,
            result_transitions: result.transitions.len(),
        };
        result
    }
}

impl RknnTEngine for FilterRefineEngine<'_> {
    fn name(&self) -> &'static str {
        if self.use_voronoi {
            "Voronoi"
        } else {
            "Filter-Refine"
        }
    }

    fn execute(&self, query: &RknntQuery) -> RknntResult {
        self.execute_scratch(query, &mut QueryScratch::new())
    }

    fn execute_scratch(&self, query: &RknntQuery, scratch: &mut QueryScratch) -> RknntResult {
        if query.is_degenerate() {
            return RknntResult::default();
        }

        // Phase 1: filter-set construction, then the shared prune + verify
        // pipeline. The construction time is folded into the filtering phase
        // so the breakdown figures match the paper's definition.
        let filter_started = Instant::now();
        let filter_outcome = self.build_filter(query);
        let construction = filter_started.elapsed();
        let mut result = self.execute_with_filter_scratch(query, &filter_outcome, scratch);
        result.timings.filtering += construction;
        result
    }

    fn execute_with_footprint(
        &self,
        query: &RknntQuery,
    ) -> (RknntResult, Option<crate::FilterFootprint>) {
        self.execute_with_footprint_scratch(query, &mut QueryScratch::new())
    }

    fn execute_with_footprint_scratch(
        &self,
        query: &RknntQuery,
        scratch: &mut QueryScratch,
    ) -> (RknntResult, Option<crate::FilterFootprint>) {
        if query.is_degenerate() {
            return (RknntResult::default(), None);
        }
        let filter_started = Instant::now();
        let filter_outcome = self.build_filter(query);
        let construction = filter_started.elapsed();
        let footprint = self.footprint_for(query, &filter_outcome);
        let mut result = self.execute_with_filter_scratch(query, &filter_outcome, scratch);
        result.timings.filtering += construction;
        (result, Some(footprint))
    }
}

/// The Voronoi engine of Section 5.1: identical pipeline, but `IsFiltered`
/// additionally uses the per-route Voronoi filtering spaces, enlarging the
/// pruned region and reducing the number of candidates to verify.
pub struct VoronoiEngine<'a>(FilterRefineEngine<'a>);

impl<'a> VoronoiEngine<'a> {
    /// Creates the Voronoi-optimised engine.
    pub fn new(routes: &'a RouteStore, transitions: &'a TransitionStore) -> Self {
        VoronoiEngine(FilterRefineEngine::with_voronoi(routes, transitions))
    }

    /// Access to the underlying Filter–Refine pipeline.
    pub fn inner(&self) -> &FilterRefineEngine<'a> {
        &self.0
    }

    /// Builds the filter set for a query; see
    /// [`FilterRefineEngine::build_filter`].
    pub fn build_filter(&self, query: &RknntQuery) -> FilterOutcome {
        self.0.build_filter(query)
    }

    /// Executes against a pre-built filter outcome; see
    /// [`FilterRefineEngine::execute_with_filter`].
    pub fn execute_with_filter(
        &self,
        query: &RknntQuery,
        filter_outcome: &FilterOutcome,
    ) -> RknntResult {
        self.0.execute_with_filter(query, filter_outcome)
    }

    /// Scratch-reusing execution against a pre-built filter outcome; see
    /// [`FilterRefineEngine::execute_with_filter_scratch`].
    pub fn execute_with_filter_scratch(
        &self,
        query: &RknntQuery,
        filter_outcome: &FilterOutcome,
        scratch: &mut QueryScratch,
    ) -> RknntResult {
        self.0
            .execute_with_filter_scratch(query, filter_outcome, scratch)
    }
}

impl RknnTEngine for VoronoiEngine<'_> {
    fn name(&self) -> &'static str {
        "Voronoi"
    }

    fn execute(&self, query: &RknntQuery) -> RknntResult {
        self.0.execute(query)
    }

    fn execute_scratch(&self, query: &RknntQuery, scratch: &mut QueryScratch) -> RknntResult {
        self.0.execute_scratch(query, scratch)
    }

    fn execute_with_footprint(
        &self,
        query: &RknntQuery,
    ) -> (RknntResult, Option<crate::FilterFootprint>) {
        self.0.execute_with_footprint(query)
    }

    fn execute_with_footprint_scratch(
        &self,
        query: &RknntQuery,
        scratch: &mut QueryScratch,
    ) -> (RknntResult, Option<crate::FilterFootprint>) {
        self.0.execute_with_footprint_scratch(query, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::BruteForceEngine;
    use rknnt_geo::Point;
    use rknnt_rtree::RTreeConfig;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    fn ladder_world() -> (RouteStore, TransitionStore) {
        let routes: Vec<Vec<Point>> = (0..12)
            .map(|i| {
                let y = i as f64 * 10.0;
                (0..8).map(|j| p(j as f64 * 10.0, y)).collect()
            })
            .collect();
        let (route_store, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), routes);
        let mut transition_store = TransitionStore::default();
        // A deterministic scatter of origin/destination pairs.
        for i in 0..150u32 {
            let ox = (i as f64 * 7.3) % 70.0;
            let oy = (i as f64 * 13.7) % 110.0;
            let dx = (i as f64 * 3.1 + 11.0) % 70.0;
            let dy = (i as f64 * 17.9 + 23.0) % 110.0;
            transition_store.insert(p(ox, oy), p(dx, dy)).unwrap();
        }
        (route_store, transition_store)
    }

    #[test]
    fn matches_brute_force_on_exists_and_forall() {
        let (routes, transitions) = ladder_world();
        let oracle = BruteForceEngine::new(&routes, &transitions);
        let fr = FilterRefineEngine::new(&routes, &transitions);
        let vo = VoronoiEngine::new(&routes, &transitions);
        for k in [1usize, 2, 5] {
            for semantics in [Semantics::Exists, Semantics::ForAll] {
                let query = RknntQuery {
                    route: vec![p(5.0, 37.0), p(35.0, 37.0), p(65.0, 37.0)],
                    k,
                    semantics,
                };
                let expected = oracle.execute(&query);
                let got_fr = fr.execute(&query);
                let got_vo = vo.execute(&query);
                assert_eq!(
                    got_fr.transitions, expected.transitions,
                    "filter-refine k={k} {semantics:?}"
                );
                assert_eq!(
                    got_vo.transitions, expected.transitions,
                    "voronoi k={k} {semantics:?}"
                );
            }
        }
    }

    #[test]
    fn stats_are_populated_and_consistent() {
        let (routes, transitions) = ladder_world();
        let fr = FilterRefineEngine::new(&routes, &transitions);
        let query = RknntQuery::exists(vec![p(5.0, 37.0), p(35.0, 37.0), p(65.0, 37.0)], 3);
        let result = fr.execute(&query);
        assert!(result.stats.filter_points > 0);
        assert!(result.stats.filter_routes > 0);
        assert!(result.stats.candidate_endpoints >= result.stats.verified_endpoints);
        assert_eq!(result.stats.result_transitions, result.transitions.len());
        assert!(result.stats.candidate_endpoints <= transitions.len() * 2);
        assert_eq!(fr.name(), "Filter-Refine");
    }

    #[test]
    fn voronoi_reduces_or_equals_candidates() {
        let (routes, transitions) = ladder_world();
        let fr = FilterRefineEngine::new(&routes, &transitions);
        let vo = VoronoiEngine::new(&routes, &transitions);
        let query = RknntQuery::exists(vec![p(5.0, 37.0), p(35.0, 37.0), p(65.0, 37.0)], 5);
        let r1 = fr.execute(&query);
        let r2 = vo.execute(&query);
        assert!(r2.stats.candidate_endpoints <= r1.stats.candidate_endpoints);
        assert_eq!(r1.transitions, r2.transitions);
        assert!(vo.inner().uses_voronoi());
        assert_eq!(vo.name(), "Voronoi");
    }

    #[test]
    fn dynamic_updates_are_visible_to_new_engines() {
        let (routes, mut transitions) = ladder_world();
        let query = RknntQuery::exists(vec![p(5.0, 37.0), p(35.0, 37.0), p(65.0, 37.0)], 2);
        let before = FilterRefineEngine::new(&routes, &transitions)
            .execute(&query)
            .transitions;
        // A transition hugging two of the query's points (distance to the
        // query is point-to-point, Definition 3) must appear after insertion.
        let id = transitions.insert(p(34.8, 37.2), p(64.5, 36.8)).unwrap();
        let after = FilterRefineEngine::new(&routes, &transitions).execute(&query);
        assert!(after.contains(id));
        assert!(after.len() >= before.len());
        // And disappear again after removal.
        transitions.remove(id);
        let removed = FilterRefineEngine::new(&routes, &transitions).execute(&query);
        assert!(!removed.contains(id));
    }

    #[test]
    fn execute_with_footprint_matches_execute_and_reports_the_filter() {
        let (routes, transitions) = ladder_world();
        let fr = FilterRefineEngine::new(&routes, &transitions);
        let vo = VoronoiEngine::new(&routes, &transitions);
        let query = RknntQuery::exists(vec![p(5.0, 37.0), p(35.0, 37.0), p(65.0, 37.0)], 3);
        for engine in [&fr as &dyn RknnTEngine, &vo] {
            let (result, footprint) = engine.execute_with_footprint(&query);
            assert_eq!(result.transitions, engine.execute(&query).transitions);
            let footprint = footprint.expect("filter engines must report a footprint");
            assert_eq!(
                footprint,
                fr.footprint_for(&query, &fr.build_filter(&query)),
                "reported footprint must be the one the execution built"
            );
        }
        // Degenerate queries build no filter and report no footprint.
        let (result, footprint) = fr.execute_with_footprint(&RknntQuery::exists(vec![], 2));
        assert!(result.is_empty());
        assert!(footprint.is_none());
        // Engines without a filter phase fall back to the default (`None`).
        let brute = BruteForceEngine::new(&routes, &transitions);
        let (result, footprint) = brute.execute_with_footprint(&query);
        assert_eq!(result.transitions, fr.execute(&query).transitions);
        assert!(footprint.is_none());
    }

    #[test]
    fn degenerate_query_returns_empty() {
        let (routes, transitions) = ladder_world();
        let fr = FilterRefineEngine::new(&routes, &transitions);
        assert!(fr.execute(&RknntQuery::exists(vec![], 2)).is_empty());
        assert!(fr
            .execute(&RknntQuery::exists(vec![p(0.0, 0.0)], 0))
            .is_empty());
    }
}
