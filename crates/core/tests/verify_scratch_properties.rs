//! Property tests for the zero-allocation verification hot path: the
//! scratch-based `count_closer_routes_sq` (epoch-stamped route marks,
//! reused traversal stack, CSR NList slices) must return exactly what the
//! legacy allocating implementation returns — same count, same `limit` cap,
//! same early-exit behaviour — across random stores, probes, thresholds and
//! limits, including after a forced epoch-counter wrap (the 2³²-reuse
//! rollover path of the mark table).

use proptest::prelude::*;
use rknnt_core::{count_closer_routes_sq, QueryScratch};
use rknnt_geo::{point_route_distance, Point};
use rknnt_index::{NList, RouteStore};
use rknnt_rtree::RTreeConfig;

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

/// Route strategy: 2–6 stops drawn from a small lattice, so routes share
/// stops (crossovers), overlap and cluster — the layouts that stress the
/// NList shortcut and the distinct-route counting.
fn routes(max_routes: usize) -> impl Strategy<Value = Vec<Vec<Point>>> {
    prop::collection::vec(
        prop::collection::vec((-8i32..8, -8i32..8), 2..6),
        1..max_routes,
    )
    .prop_map(|routes| {
        routes
            .into_iter()
            .map(|pts| {
                pts.into_iter()
                    .map(|(x, y)| p(x as f64 * 10.0, y as f64 * 10.0))
                    .collect()
            })
            .collect()
    })
}

fn probes(max: usize) -> impl Strategy<Value = Vec<(f64, f64, f64, u8)>> {
    // (x, y, threshold, limit selector)
    prop::collection::vec(
        (-100.0f64..100.0, -100.0f64..100.0, 0.0f64..250.0, 0u8..5),
        1..max,
    )
}

fn limit_of(selector: u8, num_routes: usize) -> usize {
    match selector {
        0 => 0,
        1 => 1,
        2 => 2,
        3 => num_routes.max(1),
        _ => usize::MAX,
    }
}

/// Brute-force distinct-closer-route count, independent of both
/// implementations under test.
fn brute_count(store: &RouteStore, t: &Point, threshold: f64, limit: usize) -> usize {
    store
        .routes()
        .filter(|r| point_route_distance(t, &r.points) < threshold)
        .count()
        .min(limit)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Scratch path == legacy path == brute force, with the scratch reused
    /// across every probe of the case (the realistic per-worker pattern).
    #[test]
    fn scratch_matches_legacy_and_brute_force(
        route_points in routes(12),
        queries in probes(24),
    ) {
        let (store, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), route_points);
        let nlist = NList::build(&store);
        let mut scratch = QueryScratch::new();
        for (x, y, threshold, sel) in queries {
            let t = p(x, y);
            let limit = limit_of(sel, store.num_routes());
            let sq = threshold * threshold;
            let legacy = count_closer_routes_sq(&store, &nlist, &t, sq, limit);
            let scr = scratch.count_closer_routes_sq(&store, &nlist, &t, sq, limit);
            prop_assert_eq!(
                scr, legacy,
                "scratch vs legacy diverged at {} threshold {} limit {}",
                t, threshold, limit
            );
            prop_assert_eq!(
                legacy,
                brute_count(&store, &t, threshold, limit),
                "legacy vs brute force diverged at {} threshold {} limit {}",
                t, threshold, limit
            );
        }
    }

    /// The epoch-rollover path: forcing the mark table's epoch counter to
    /// the wrap boundary (simulating 2³²-class reuse) must not change a
    /// single answer — stale stamps from before the wrap can never leak
    /// into the post-wrap epochs.
    #[test]
    fn forced_epoch_wrap_changes_no_answer(
        route_points in routes(10),
        queries in probes(12),
    ) {
        let (store, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), route_points);
        let nlist = NList::build(&store);
        let mut scratch = QueryScratch::new();
        // Dirty the mark table with real marks first...
        for (x, y, threshold, sel) in &queries {
            let limit = limit_of(*sel, store.num_routes());
            scratch.count_closer_routes_sq(&store, &nlist, &p(*x, *y), threshold * threshold, limit);
        }
        // ...then wrap the epoch and re-run: every answer must still match
        // the allocating path, and keep matching on continued reuse.
        scratch.force_epoch_wrap();
        for round in 0..3 {
            for (x, y, threshold, sel) in &queries {
                let t = p(*x, *y);
                let limit = limit_of(*sel, store.num_routes());
                let sq = threshold * threshold;
                let legacy = count_closer_routes_sq(&store, &nlist, &t, sq, limit);
                let scr = scratch.count_closer_routes_sq(&store, &nlist, &t, sq, limit);
                prop_assert_eq!(
                    scr, legacy,
                    "post-wrap round {} diverged at {} threshold {} limit {}",
                    round, t, threshold, limit
                );
            }
        }
    }
}
