//! Debug-build allocation counter for the query hot path: after warm-up,
//! the scratch-based verification kernel must perform **zero** heap
//! allocations per candidate, and a full `execute_with_filter_scratch`
//! pipeline must allocate only a small per-*query* constant (the returned
//! result vector), independent of how many candidates it verifies.
//!
//! The counter is a thin wrapper around the system allocator installed only
//! in this test binary — fully hermetic, no external crates — and the
//! assertions are compiled under `cfg(debug_assertions)`, so release test
//! runs (CI runs the suite with `--release` too) execute the same code but
//! skip the counting-based asserts. Tests share one global counter, so they
//! serialise on a mutex.

use rknnt_core::{FilterRefineEngine, QueryScratch, RknntQuery};
use rknnt_geo::{point_route_distance_sq, Point};
use rknnt_index::{NList, RouteStore, TransitionStore};
use rknnt_rtree::RTreeConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Counts every allocation (and growth reallocation) routed through the
/// global allocator. Deallocations are not counted: the hot-path contract
/// is about *acquiring* memory per candidate.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Serialises the tests: the counter is process-global, so concurrent tests
/// would attribute each other's allocations.
static EXCLUSIVE: Mutex<()> = Mutex::new(());

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn p(x: f64, y: f64) -> Point {
    Point::new(x, y)
}

/// A ladder of horizontal routes plus a deterministic transition scatter —
/// the standard worlds of the engine test-suites, scaled by `n`.
fn world(n_routes: usize, n_transitions: u32) -> (RouteStore, TransitionStore) {
    let routes: Vec<Vec<Point>> = (0..n_routes)
        .map(|i| {
            let y = i as f64 * 10.0;
            (0..8).map(|j| p(j as f64 * 10.0, y)).collect()
        })
        .collect();
    let (route_store, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), routes);
    let mut transition_store = TransitionStore::default();
    for i in 0..n_transitions {
        let ox = (i as f64 * 7.3) % 70.0;
        let oy = (i as f64 * 13.7) % (n_routes as f64 * 10.0);
        let dx = (i as f64 * 3.1 + 11.0) % 70.0;
        let dy = (i as f64 * 17.9 + 23.0) % (n_routes as f64 * 10.0);
        transition_store.insert(p(ox, oy), p(dx, dy)).unwrap();
    }
    (route_store, transition_store)
}

#[test]
fn warmed_scratch_verification_never_allocates() {
    let _guard = EXCLUSIVE.lock().unwrap();
    let (routes, transitions) = world(12, 150);
    let nlist = NList::build(&routes);
    let query = vec![p(5.0, 37.0), p(35.0, 37.0), p(65.0, 37.0)];
    let candidates: Vec<(Point, f64)> = transitions
        .transitions()
        .flat_map(|t| [t.origin, t.destination])
        .map(|e| (e, point_route_distance_sq(&e, &query)))
        .collect();

    let mut scratch = QueryScratch::new();
    let run = |scratch: &mut QueryScratch| -> usize {
        candidates
            .iter()
            .map(|(c, sq)| scratch.count_closer_routes_sq(&routes, &nlist, c, *sq, 5))
            .sum()
    };
    // Warm-up: the mark table and traversal stack grow to steady state.
    let reference = run(&mut scratch);

    let before = allocations();
    let counted = run(&mut scratch);
    let delta = allocations() - before;
    assert_eq!(counted, reference, "warmed pass changed the counts");
    // The hot-path contract: zero allocations per candidate after warm-up.
    // Counting is only meaningful when the whole workspace (including the
    // engines) is compiled with debug assertions; release test runs skip
    // the numeric assert but still execute every code path above.
    #[cfg(debug_assertions)]
    assert_eq!(
        delta,
        0,
        "scratch verification allocated {delta} times across {} candidates after warm-up",
        candidates.len()
    );
    #[cfg(not(debug_assertions))]
    let _ = delta;
}

#[test]
fn warmed_execute_allocates_a_per_query_constant_not_per_candidate() {
    let _guard = EXCLUSIVE.lock().unwrap();
    // Two worlds an order of magnitude apart in candidate count: the
    // steady-state allocation count of the scratch pipeline must not grow
    // with the candidate volume (that is what "zero allocations per
    // candidate" means for the full execute path — only the returned
    // result's own buffer may be allocated, once per query).
    let mut steady_deltas = Vec::new();
    for (n_routes, n_transitions) in [(8usize, 60u32), (12, 600)] {
        let (routes, transitions) = world(n_routes, n_transitions);
        let engine = FilterRefineEngine::new(&routes, &transitions);
        let query = RknntQuery::exists(vec![p(5.0, 37.0), p(35.0, 37.0), p(65.0, 37.0)], 3);
        let outcome = engine.build_filter(&query);
        let mut scratch = QueryScratch::new();
        // Warm-up: buffers, maps and the result-shape capacity reach steady
        // state (two rounds so the per-transition map is fully grown).
        let reference = engine.execute_with_filter_scratch(&query, &outcome, &mut scratch);
        let _ = engine.execute_with_filter_scratch(&query, &outcome, &mut scratch);

        let before = allocations();
        let result = engine.execute_with_filter_scratch(&query, &outcome, &mut scratch);
        let delta = allocations() - before;
        drop(result.clone());
        assert_eq!(result.transitions, reference.transitions);
        assert!(result.stats.candidate_endpoints > 0);
        steady_deltas.push((result.stats.candidate_endpoints, delta));
    }
    #[cfg(debug_assertions)]
    {
        let (small_cands, small_delta) = steady_deltas[0];
        let (large_cands, large_delta) = steady_deltas[1];
        assert!(
            large_cands > small_cands,
            "the second world must verify more candidates ({large_cands} vs {small_cands})"
        );
        // Per-query constant: a handful of allocations for the returned
        // result, regardless of candidate volume.
        for (cands, delta) in &steady_deltas {
            assert!(
                *delta <= 8,
                "steady-state execute allocated {delta} times for {cands} candidates"
            );
        }
        assert_eq!(
            small_delta, large_delta,
            "allocation count must not scale with candidates"
        );
    }
    #[cfg(not(debug_assertions))]
    let _ = steady_deltas;
}
