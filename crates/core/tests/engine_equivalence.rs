//! Property-based equivalence tests: every index-based engine must return
//! exactly the transitions the brute-force oracle returns, for random route
//! networks, random transition sets and random queries, under both
//! semantics — the central correctness claim of the reproduction.

use proptest::prelude::*;
use rknnt_core::{
    BruteForceEngine, DivideConquerEngine, FilterRefineEngine, RknnTEngine, RknntQuery, Semantics,
    VoronoiEngine,
};
use rknnt_geo::Point;
use rknnt_index::{RouteStore, TransitionStore};
use rknnt_rtree::RTreeConfig;

/// Points on a continuous square so exact distance ties have probability ~0.
fn pt() -> impl Strategy<Value = Point> {
    (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn route() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(pt(), 2..7)
}

fn routes() -> impl Strategy<Value = Vec<Vec<Point>>> {
    prop::collection::vec(route(), 2..12)
}

fn transitions() -> impl Strategy<Value = Vec<(Point, Point)>> {
    prop::collection::vec((pt(), pt()), 1..60)
}

fn query_route() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(pt(), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_engines_agree_with_oracle(
        rs in routes(),
        ts in transitions(),
        q in query_route(),
        k in 1usize..6,
        forall in any::<bool>(),
    ) {
        let (route_store, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), rs);
        let transition_store = TransitionStore::bulk_build(RTreeConfig::new(8, 3), ts);
        let semantics = if forall { Semantics::ForAll } else { Semantics::Exists };
        let query = RknntQuery { route: q, k, semantics };

        let oracle = BruteForceEngine::new(&route_store, &transition_store).execute(&query);
        let fr = FilterRefineEngine::new(&route_store, &transition_store).execute(&query);
        let vo = VoronoiEngine::new(&route_store, &transition_store).execute(&query);
        let dc = DivideConquerEngine::new(&route_store, &transition_store).execute(&query);

        prop_assert_eq!(&fr.transitions, &oracle.transitions, "filter-refine");
        prop_assert_eq!(&vo.transitions, &oracle.transitions, "voronoi");
        prop_assert_eq!(&dc.transitions, &oracle.transitions, "divide-conquer");
    }

    /// Lemma 1: the ∀ result is always a subset of the ∃ result.
    #[test]
    fn forall_subset_of_exists(
        rs in routes(),
        ts in transitions(),
        q in query_route(),
        k in 1usize..5,
    ) {
        let (route_store, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), rs);
        let transition_store = TransitionStore::bulk_build(RTreeConfig::new(8, 3), ts);
        let engine = FilterRefineEngine::new(&route_store, &transition_store);
        let exists = engine.execute(&RknntQuery { route: q.clone(), k, semantics: Semantics::Exists });
        let forall = engine.execute(&RknntQuery { route: q, k, semantics: Semantics::ForAll });
        for id in &forall.transitions {
            prop_assert!(exists.contains(*id));
        }
    }

    /// Monotonicity in k: a larger k can only admit more transitions.
    #[test]
    fn results_monotone_in_k(
        rs in routes(),
        ts in transitions(),
        q in query_route(),
    ) {
        let (route_store, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), rs);
        let transition_store = TransitionStore::bulk_build(RTreeConfig::new(8, 3), ts);
        let engine = VoronoiEngine::new(&route_store, &transition_store);
        let mut previous: Vec<_> = Vec::new();
        for k in [1usize, 2, 4, 8] {
            let result = engine.execute(&RknntQuery::exists(q.clone(), k)).transitions;
            for id in &previous {
                prop_assert!(result.binary_search(id).is_ok(), "k-monotonicity violated");
            }
            previous = result;
        }
    }

    /// Dynamic updates: after removing every transition returned by a query,
    /// re-running the query on a freshly built engine returns nothing from
    /// the removed set, and inserting them back restores the result.
    #[test]
    fn updates_roundtrip(
        rs in routes(),
        ts in transitions(),
        q in query_route(),
        k in 1usize..4,
    ) {
        let (route_store, _) = RouteStore::bulk_build(RTreeConfig::new(8, 3), rs);
        let mut transition_store = TransitionStore::bulk_build(RTreeConfig::new(8, 3), ts);
        let query = RknntQuery::exists(q, k);
        let before = FilterRefineEngine::new(&route_store, &transition_store).execute(&query);
        let removed: Vec<_> = before
            .transitions
            .iter()
            .map(|id| *transition_store.get(*id).unwrap())
            .collect();
        for t in &removed {
            prop_assert!(transition_store.remove(t.id));
        }
        let after = FilterRefineEngine::new(&route_store, &transition_store).execute(&query);
        for t in &removed {
            prop_assert!(!after.contains(t.id));
        }
        // Re-insert (new ids) and check the result count is restored.
        for t in &removed {
            transition_store.insert(t.origin, t.destination).unwrap();
        }
        let restored = FilterRefineEngine::new(&route_store, &transition_store).execute(&query);
        prop_assert_eq!(restored.len(), before.len());
    }
}
