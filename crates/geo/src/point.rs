//! 2-D points and basic vector operations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point in the plane.
///
/// The paper represents route points and transition points as
/// (latitude, longitude) pairs and measures Euclidean distance between them;
/// we keep the same planar model. Coordinates are interpreted as metres in
/// the synthetic city generator, which keeps the Euclidean assumption honest
/// at city scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct Point {
    /// Horizontal coordinate (metres east in the synthetic model).
    pub x: f64,
    /// Vertical coordinate (metres north in the synthetic model).
    pub y: f64,
}

impl Point {
    /// Creates a point from its two coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to another point.
    ///
    /// Cheaper than [`Point::distance`] and sufficient for comparisons, so
    /// the pruning predicates work on squared distances throughout.
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: &Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Dot product treating the points as vectors from the origin.
    #[inline]
    pub fn dot(&self, other: &Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Squared length of the vector from the origin to this point.
    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.dot(self)
    }

    /// Length of the vector from the origin to this point.
    #[inline]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(&self, other: &Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Rotates the vector from the origin by `angle` radians counterclockwise.
    #[inline]
    pub fn rotate(&self, angle: f64) -> Point {
        let (s, c) = angle.sin_cos();
        Point::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Returns true when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Index of the nearest point in `candidates`, together with the squared
    /// distance to it. Returns `None` for an empty slice.
    pub fn nearest_in(&self, candidates: &[Point]) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, c) in candidates.iter().enumerate() {
            let d = self.distance_sq(c);
            match best {
                Some((_, bd)) if bd <= d => {}
                _ => best = Some((i, d)),
            }
        }
        best
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point::new(-3.0, 0.5);
        let b = Point::new(2.0, -7.25);
        let d = a.distance(&b);
        assert!((a.distance_sq(&b) - d * d).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 4.0);
        let m = a.midpoint(&b);
        assert!((m.distance(&a) - m.distance(&b)).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a.lerp(&b, 0.0), a);
        assert_eq!(a.lerp(&b, 1.0), b);
        assert_eq!(a.lerp(&b, 0.5), a.midpoint(&b));
    }

    #[test]
    fn rotate_quarter_turn() {
        let p = Point::new(1.0, 0.0);
        let r = p.rotate(std::f64::consts::FRAC_PI_2);
        assert!((r.x - 0.0).abs() < 1e-12);
        assert!((r.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_in_picks_minimum() {
        let p = Point::new(0.0, 0.0);
        let cands = vec![
            Point::new(5.0, 5.0),
            Point::new(1.0, 1.0),
            Point::new(-0.5, 0.1),
        ];
        let (idx, d) = p.nearest_in(&cands).unwrap();
        assert_eq!(idx, 2);
        assert!((d - (0.25 + 0.01)).abs() < 1e-12);
        assert!(p.nearest_in(&[]).is_none());
    }

    #[test]
    fn arithmetic_operators() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
    }

    #[test]
    fn conversions_roundtrip() {
        let p: Point = (2.5, -3.5).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (2.5, -3.5));
        assert_eq!(format!("{p}"), "(2.500, -3.500)");
    }
}
