//! Z-order (Morton) cell grid over a dataset MBR — the space-filling-curve
//! substrate of the sharded service layer.
//!
//! A [`CellGrid`] overlays a `2^bits × 2^bits` grid of equal-size cells on a
//! bounding rectangle and numbers the cells along the Z-order curve: the
//! cell index interleaves the bits of the column and row indices, so cells
//! that are close in index tend to be close in space. Shard assignment then
//! reduces to splitting the one-dimensional index range `[0, 4^bits)` into
//! contiguous slices — [`CellGrid::shard_of_cell`] — which keeps each
//! shard's territory spatially coherent without any per-cell lookup table.
//!
//! The mapping is exact in both directions ([`CellGrid::interleave`] /
//! [`CellGrid::deinterleave`] are bijective on the grid) and
//! [`CellGrid::cell_of`] post-corrects the floating-point floor so that the
//! returned cell's [`CellGrid::cell_rect`] always contains the point —
//! properties the `zorder_properties` proptest suite pins down.

use crate::point::Point;
use crate::rect::Rect;

/// Maximum supported bits per axis: 15 bits per axis keeps the interleaved
/// index comfortably inside `u32` and caps the grid at 2^30 cells.
pub const MAX_GRID_BITS: u32 = 15;

/// A Z-order grid of `2^bits × 2^bits` equal cells over a fixed MBR.
///
/// Points outside the MBR are clamped into the nearest edge cell, so every
/// finite point maps to a cell; the grid never rejects input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellGrid {
    mbr: Rect,
    bits: u32,
}

impl CellGrid {
    /// A grid over `mbr` with `bits` bits per axis (clamped to
    /// `1..=MAX_GRID_BITS`). An empty `mbr` degenerates to a single-point
    /// domain where every point lands in cell 0.
    pub fn new(mbr: Rect, bits: u32) -> Self {
        let bits = bits.clamp(1, MAX_GRID_BITS);
        CellGrid { mbr, bits }
    }

    /// The grid's bounding rectangle.
    pub fn mbr(&self) -> Rect {
        self.mbr
    }

    /// Bits per axis.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Cells per axis (`2^bits`).
    pub fn side(&self) -> u32 {
        1 << self.bits
    }

    /// Total number of cells (`4^bits`).
    pub fn num_cells(&self) -> u64 {
        (self.side() as u64) * (self.side() as u64)
    }

    /// Interleaves the bits of `(x, y)` into a Z-order index
    /// (x occupies the even bit positions).
    pub fn interleave(x: u32, y: u32) -> u64 {
        spread(x) | (spread(y) << 1)
    }

    /// Inverse of [`CellGrid::interleave`].
    pub fn deinterleave(z: u64) -> (u32, u32) {
        (compact(z), compact(z >> 1))
    }

    /// One axis's cell width (0 on a degenerate axis).
    fn cell_extent(&self, span: f64) -> f64 {
        if span.is_finite() && span > 0.0 {
            span / self.side() as f64
        } else {
            0.0
        }
    }

    /// Axis index of `v` within `[min, min + side*extent]`, floored, clamped
    /// and post-corrected so that `min + i*extent <= v <= min + (i+1)*extent`
    /// holds *exactly* in the produced floating-point arithmetic (a plain
    /// floor can land one cell off when `v - min` rounds across a boundary).
    fn axis_index(&self, v: f64, min: f64, extent: f64) -> u32 {
        let side = self.side();
        if extent <= 0.0 || !v.is_finite() {
            return 0;
        }
        let raw = ((v - min) / extent).floor();
        let mut i = if raw.is_finite() {
            raw.clamp(0.0, (side - 1) as f64) as u32
        } else {
            0
        };
        // Post-correct against the exact cell boundaries (at most one step).
        if i > 0 && min + i as f64 * extent > v {
            i -= 1;
        }
        if i + 1 < side && min + (i + 1) as f64 * extent < v {
            i += 1;
        }
        i
    }

    /// The Z-order cell index of `p` (clamped into the grid).
    pub fn cell_of(&self, p: &Point) -> u64 {
        let ex = self.cell_extent(self.mbr.max.x - self.mbr.min.x);
        let ey = self.cell_extent(self.mbr.max.y - self.mbr.min.y);
        let ix = self.axis_index(p.x, self.mbr.min.x, ex);
        let iy = self.axis_index(p.y, self.mbr.min.y, ey);
        Self::interleave(ix, iy)
    }

    /// The rectangle of cell `z` (boundary-inclusive; adjacent cells share
    /// their common boundary). Degenerate axes collapse to the MBR edge.
    pub fn cell_rect(&self, z: u64) -> Rect {
        let (ix, iy) = Self::deinterleave(z);
        let ex = self.cell_extent(self.mbr.max.x - self.mbr.min.x);
        let ey = self.cell_extent(self.mbr.max.y - self.mbr.min.y);
        let min = Point::new(
            self.mbr.min.x + ix as f64 * ex,
            self.mbr.min.y + iy as f64 * ey,
        );
        let max = Point::new(
            self.mbr.min.x + (ix + 1) as f64 * ex,
            self.mbr.min.y + (iy + 1) as f64 * ey,
        );
        Rect::new(min, max)
    }

    /// Which of `shards` contiguous Z-range slices cell `z` belongs to.
    ///
    /// The index space `[0, 4^bits)` is cut into `shards` ranges whose sizes
    /// differ by at most one; the mapping is monotone in `z`, so each shard's
    /// territory is one contiguous run of the Z-order curve.
    pub fn shard_of_cell(&self, z: u64, shards: usize) -> usize {
        let shards = shards.max(1) as u64;
        let total = self.num_cells();
        let z = z.min(total - 1);
        ((z * shards) / total) as usize
    }

    /// [`CellGrid::shard_of_cell`] composed with [`CellGrid::cell_of`].
    pub fn shard_of_point(&self, p: &Point, shards: usize) -> usize {
        self.shard_of_cell(self.cell_of(p), shards)
    }

    /// Union rectangle of every cell assigned to `shard` — the shard's
    /// static spatial territory (independent of what data it holds).
    pub fn shard_territory(&self, shard: usize, shards: usize) -> Rect {
        let mut out = Rect::empty();
        for z in 0..self.num_cells() {
            if self.shard_of_cell(z, shards) == shard {
                out = out.union(&self.cell_rect(z));
            }
        }
        out
    }
}

/// Spreads the 16 low bits of `v` so bit `i` lands at position `2i`.
fn spread(v: u32) -> u64 {
    let mut v = (v as u64) & 0xFFFF;
    v = (v | (v << 8)) & 0x00FF_00FF;
    v = (v | (v << 4)) & 0x0F0F_0F0F;
    v = (v | (v << 2)) & 0x3333_3333;
    v = (v | (v << 1)) & 0x5555_5555;
    v
}

/// Inverse of [`spread`]: collects the even-position bits of `z`.
fn compact(z: u64) -> u32 {
    let mut z = z & 0x5555_5555;
    z = (z | (z >> 1)) & 0x3333_3333;
    z = (z | (z >> 2)) & 0x0F0F_0F0F;
    z = (z | (z >> 4)) & 0x00FF_00FF;
    z = (z | (z >> 8)) & 0x0000_FFFF;
    z as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> CellGrid {
        CellGrid::new(Rect::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)), 2)
    }

    #[test]
    fn morton_order_matches_the_textbook_sequence() {
        // First eight cells of the 4x4 Z curve.
        let expected = [
            (0, 0),
            (1, 0),
            (0, 1),
            (1, 1),
            (2, 0),
            (3, 0),
            (2, 1),
            (3, 1),
        ];
        for (z, &(x, y)) in expected.iter().enumerate() {
            assert_eq!(CellGrid::deinterleave(z as u64), (x, y));
            assert_eq!(CellGrid::interleave(x, y), z as u64);
        }
    }

    #[test]
    fn points_map_into_containing_cells() {
        let g = grid();
        let p = Point::new(26.0, 74.0);
        let z = g.cell_of(&p);
        assert!(g.cell_rect(z).contains_point(&p));
    }

    #[test]
    fn out_of_bounds_points_clamp_to_edge_cells() {
        let g = grid();
        assert_eq!(g.cell_of(&Point::new(-50.0, -50.0)), 0);
        let far = g.cell_of(&Point::new(1e6, 1e6));
        assert_eq!(CellGrid::deinterleave(far), (3, 3));
    }

    #[test]
    fn degenerate_mbr_sends_everything_to_cell_zero() {
        let g = CellGrid::new(Rect::from_point(Point::new(5.0, 5.0)), 3);
        assert_eq!(g.cell_of(&Point::new(-10.0, 40.0)), 0);
        assert!(g.cell_rect(0).contains_point(&Point::new(5.0, 5.0)));
    }

    #[test]
    fn shard_ranges_are_contiguous_balanced_and_exhaustive() {
        let g = CellGrid::new(Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)), 4);
        for shards in [1usize, 2, 3, 4, 8] {
            let mut counts = vec![0u64; shards];
            let mut last = 0usize;
            for z in 0..g.num_cells() {
                let s = g.shard_of_cell(z, shards);
                assert!(s >= last, "assignment must be monotone in z");
                assert!(s < shards);
                last = s;
                counts[s] += 1;
            }
            let min = counts.iter().min().unwrap();
            let max = counts.iter().max().unwrap();
            assert!(max - min <= 1, "slice sizes differ by more than one");
        }
    }

    #[test]
    fn shard_territories_tile_the_mbr() {
        let g = grid();
        let shards = 4;
        let mut union = Rect::empty();
        for s in 0..shards {
            union = union.union(&g.shard_territory(s, shards));
        }
        assert!(union.contains_rect(&g.mbr()));
    }
}
