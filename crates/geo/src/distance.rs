//! Distance functions used by the query processing layer.

use crate::point::Point;
use crate::rect::Rect;

/// Point-to-route distance of Definition 3: the minimum Euclidean distance
/// from a transition point `t` to every point of the route `route`.
///
/// Returns `f64::INFINITY` for an empty route, which makes an empty route
/// "infinitely far" — it can never be a nearest neighbour, matching the
/// requirement that routes have at least two points.
pub fn point_route_distance(t: &Point, route: &[Point]) -> f64 {
    point_route_distance_sq(t, route).sqrt()
}

/// Squared variant of [`point_route_distance`]; prefer this in comparisons.
pub fn point_route_distance_sq(t: &Point, route: &[Point]) -> f64 {
    route
        .iter()
        .map(|r| t.distance_sq(r))
        .fold(f64::INFINITY, f64::min)
}

/// `MinDist(Q, c)` of Equation 3: the minimum over all query points of the
/// minimum distance from the query point to the rectangle `c`. This is the
/// priority used by the best-first traversals in Algorithms 2 and 4.
pub fn min_dist_query_rect(query: &[Point], rect: &Rect) -> f64 {
    query
        .iter()
        .map(|q| rect.min_dist_sq(q))
        .fold(f64::INFINITY, f64::min)
        .sqrt()
}

/// Minimum distance from a query route to a single point (used when heap
/// entries are leaf points rather than nodes).
pub fn min_dist_query_point(query: &[Point], p: &Point) -> f64 {
    point_route_distance(p, query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_route_distance_picks_closest_vertex() {
        let route = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
        ];
        let t = Point::new(11.0, 1.0);
        assert!((point_route_distance(&t, &route) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(point_route_distance(&t, &[]), f64::INFINITY);
    }

    #[test]
    fn min_dist_query_rect_is_zero_when_a_query_point_is_inside() {
        let rect = Rect::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        let q_inside = vec![Point::new(10.0, 10.0), Point::new(2.0, 2.0)];
        let q_outside = vec![Point::new(10.0, 4.0), Point::new(7.0, 4.0)];
        assert_eq!(min_dist_query_rect(&q_inside, &rect), 0.0);
        assert_eq!(min_dist_query_rect(&q_outside, &rect), 3.0);
    }

    #[test]
    fn min_dist_query_point_matches_point_route_distance() {
        let q = vec![Point::new(0.0, 0.0), Point::new(5.0, 5.0)];
        let p = Point::new(4.0, 4.0);
        assert!((min_dist_query_point(&q, &p) - 2f64.sqrt()).abs() < 1e-12);
    }
}
