//! Perpendicular-bisector half-planes.
//!
//! Given a query point `q` and a filtering (route) point `r`, the
//! perpendicular bisector `⊥(q, r)` splits the plane into two half-planes:
//! `H_{r:q}` containing `r` (every point in it is at least as close to `r` as
//! to `q`) and `H_{q:r}` containing `q`. Half-space pruning (Section 2.1,
//! Figure 2 of the paper) removes from consideration any object that lies in
//! `H_{r:q}`, because such an object prefers `r` over the query point `q`.

use crate::point::Point;
use crate::rect::Rect;
use crate::EPSILON;
use serde::{Deserialize, Serialize};

/// The half-plane `H_{r:q}` of points closer to `r` than to `q`.
///
/// Internally stored as a linear inequality `a·x + b·y <= c` with
/// `(a, b) = q - r` (so that the inequality holds exactly for points whose
/// distance to `r` does not exceed their distance to `q`). Keeping the
/// algebraic form makes point and rectangle tests two multiplications each,
/// which matters because Algorithm 3 evaluates these predicates for every
/// heap entry during filtering.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HalfPlane {
    /// Coefficient of x in `a·x + b·y <= c`.
    a: f64,
    /// Coefficient of y in `a·x + b·y <= c`.
    b: f64,
    /// Right-hand side of `a·x + b·y <= c`.
    c: f64,
    /// The filtering point `r` that generated this half-plane.
    r: Point,
    /// The query point `q` that generated this half-plane.
    q: Point,
}

impl HalfPlane {
    /// Builds the half-plane `H_{r:q}` of points no farther from `r` than
    /// from `q`.
    ///
    /// Derivation: `|p - r|² <= |p - q|²` expands to
    /// `2 (q - r)·p <= |q|² - |r|²`, hence `a = 2(q.x - r.x)`,
    /// `b = 2(q.y - r.y)`, `c = |q|² - |r|²`.
    ///
    /// When `q == r` the bisector is undefined; the returned half-plane
    /// accepts every point (coefficients all zero, `c = 0`), which is the
    /// conservative choice for pruning: a degenerate filtering point never
    /// prunes anything by itself but does not wrongly prune either. Callers
    /// that care can check [`HalfPlane::is_degenerate`].
    pub fn closer_to(r: Point, q: Point) -> Self {
        let a = 2.0 * (q.x - r.x);
        let b = 2.0 * (q.y - r.y);
        let c = (q.x * q.x + q.y * q.y) - (r.x * r.x + r.y * r.y);
        HalfPlane { a, b, c, r, q }
    }

    /// The filtering point `r` used to build this half-plane.
    #[inline]
    pub fn filtering_point(&self) -> Point {
        self.r
    }

    /// The query point `q` used to build this half-plane.
    #[inline]
    pub fn query_point(&self) -> Point {
        self.q
    }

    /// True when `q == r`, i.e. the bisector is undefined. Degenerate
    /// half-planes accept every point but callers should never treat a
    /// degenerate half-plane as a pruning witness (it is the *same* point).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.a == 0.0 && self.b == 0.0
    }

    /// Signed evaluation: negative (or ~0) means the point is in `H_{r:q}`.
    #[inline]
    fn eval(&self, p: &Point) -> f64 {
        self.a * p.x + self.b * p.y - self.c
    }

    /// Whether point `p` is closer to `r` than to `q` (ties count as inside,
    /// matching `dist(t, R) < dist(t, Q)` pruning being safe only for strict
    /// improvement; we keep ties inside because a tie already means `Q` is
    /// not *the* unique nearest and the refinement step re-verifies
    /// candidates exactly).
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        if self.is_degenerate() {
            return true;
        }
        self.eval(p) <= EPSILON
    }

    /// Whether point `p` is *strictly* closer to `r` than to `q`.
    #[inline]
    pub fn strictly_contains_point(&self, p: &Point) -> bool {
        if self.is_degenerate() {
            return false;
        }
        self.eval(p) < -EPSILON
    }

    /// Whether the whole rectangle lies inside `H_{r:q}`.
    ///
    /// A half-plane is convex, so it suffices that all four corners are
    /// inside; equivalently (and cheaper) the corner that maximises
    /// `a·x + b·y` must satisfy the inequality.
    #[inline]
    pub fn contains_rect(&self, rect: &Rect) -> bool {
        if self.is_degenerate() {
            return true;
        }
        // The maximiser of a*x over [min.x, max.x] is max.x when a > 0 else min.x.
        let x = if self.a > 0.0 { rect.max.x } else { rect.min.x };
        let y = if self.b > 0.0 { rect.max.y } else { rect.min.y };
        self.a * x + self.b * y - self.c <= EPSILON
    }

    /// Whether the whole rectangle lies *strictly* inside `H_{r:q}`, i.e.
    /// every point of the rectangle is strictly closer to `r` than to `q`.
    ///
    /// This is the variant the RkNNT pruning rules use: a route only
    /// disqualifies a candidate when it is strictly closer, so exact ties
    /// (which occur whenever a query point coincides with a bus stop) are
    /// left to the verification phase instead of being pruned away.
    #[inline]
    pub fn strictly_contains_rect(&self, rect: &Rect) -> bool {
        if self.is_degenerate() {
            return false;
        }
        let x = if self.a > 0.0 { rect.max.x } else { rect.min.x };
        let y = if self.b > 0.0 { rect.max.y } else { rect.min.y };
        self.a * x + self.b * y - self.c < -EPSILON
    }

    /// Whether the rectangle intersects `H_{r:q}` at all (i.e. at least one
    /// point of the rectangle is closer to `r` than to `q`).
    #[inline]
    pub fn intersects_rect(&self, rect: &Rect) -> bool {
        if self.is_degenerate() {
            return true;
        }
        // The minimiser of a*x + b*y over the rect must satisfy the inequality.
        let x = if self.a > 0.0 { rect.min.x } else { rect.max.x };
        let y = if self.b > 0.0 { rect.min.y } else { rect.max.y };
        self.a * x + self.b * y - self.c <= EPSILON
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_side_matches_distance_comparison() {
        let r = Point::new(0.0, 0.0);
        let q = Point::new(10.0, 0.0);
        let hp = HalfPlane::closer_to(r, q);
        assert!(hp.contains_point(&Point::new(1.0, 3.0)));
        assert!(!hp.contains_point(&Point::new(9.0, 3.0)));
        // A point on the bisector (x = 5) is inside (ties allowed).
        assert!(hp.contains_point(&Point::new(5.0, -2.0)));
        assert!(!hp.strictly_contains_point(&Point::new(5.0, -2.0)));
    }

    #[test]
    fn degenerate_half_plane() {
        let p = Point::new(1.0, 1.0);
        let hp = HalfPlane::closer_to(p, p);
        assert!(hp.is_degenerate());
        assert!(hp.contains_point(&Point::new(100.0, -3.0)));
        assert!(!hp.strictly_contains_point(&Point::new(100.0, -3.0)));
        assert!(hp.contains_rect(&Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))));
    }

    #[test]
    fn rect_containment() {
        let r = Point::new(0.0, 0.0);
        let q = Point::new(10.0, 0.0);
        let hp = HalfPlane::closer_to(r, q);
        // Entirely on r's side.
        let near_r = Rect::new(Point::new(-2.0, -2.0), Point::new(2.0, 2.0));
        // Straddles the bisector x = 5.
        let straddle = Rect::new(Point::new(4.0, 0.0), Point::new(6.0, 1.0));
        // Entirely on q's side.
        let near_q = Rect::new(Point::new(8.0, -1.0), Point::new(9.0, 1.0));
        assert!(hp.contains_rect(&near_r));
        assert!(!hp.contains_rect(&straddle));
        assert!(hp.intersects_rect(&straddle));
        assert!(!hp.contains_rect(&near_q));
        assert!(!hp.intersects_rect(&near_q));
    }

    #[test]
    fn rect_containment_agrees_with_corner_test() {
        // Randomised-ish grid check without rand dependency: sample a lattice.
        let r = Point::new(3.0, -2.0);
        let q = Point::new(-1.0, 4.0);
        let hp = HalfPlane::closer_to(r, q);
        for i in -5..5 {
            for j in -5..5 {
                let rect = Rect::new(
                    Point::new(i as f64, j as f64),
                    Point::new(i as f64 + 1.5, j as f64 + 0.75),
                );
                let by_corners = rect.corners().iter().all(|c| hp.contains_point(c));
                assert_eq!(hp.contains_rect(&rect), by_corners, "rect {rect:?}");
                let any_corner_or_more = rect.corners().iter().any(|c| hp.contains_point(c));
                // intersects_rect is implied by any corner being inside.
                if any_corner_or_more {
                    assert!(hp.intersects_rect(&rect));
                }
            }
        }
    }

    #[test]
    fn generating_points_are_on_their_own_sides() {
        let r = Point::new(2.0, 7.0);
        let q = Point::new(-4.0, 1.0);
        let hp = HalfPlane::closer_to(r, q);
        assert!(hp.strictly_contains_point(&r));
        assert!(!hp.contains_point(&q));
        assert_eq!(hp.filtering_point(), r);
        assert_eq!(hp.query_point(), q);
    }
}
