//! Geometry primitives for Reverse k Nearest Neighbor search over trajectories.
//!
//! This crate provides the computational-geometry substrate used by the rest
//! of the workspace:
//!
//! * [`Point`] — a 2-D point (longitude/latitude treated as planar
//!   coordinates, as in the paper's Euclidean distance model).
//! * [`Rect`] — an axis-aligned minimum bounding rectangle (MBR) with the
//!   `MinDist` / `MaxDist` metrics needed for best-first R-tree traversal.
//! * [`HalfPlane`] — the half-plane `H_{r:q}` induced by the perpendicular
//!   bisector `⊥(q, r)` between a query point `q` and a filtering point `r`
//!   (Figure 2 of the paper).
//! * [`FilteringSpace`] — the intersection `H_{r:Q} = ⋂_{q∈Q} H_{r:q}`
//!   (Definition 6), i.e. the region in which every point is closer to the
//!   filtering point `r` than to *every* point of the query route `Q`.
//! * [`VoronoiFilter`] — the Voronoi filtering space `H_{R:Q}` of
//!   Definition 8, expressed as a nearest-generator predicate rather than an
//!   explicit cell decomposition (see the module documentation of
//!   [`voronoi`]).
//! * Distance helpers for point-to-route distance (Definition 3) and
//!   polyline travel distance `ψ(R)` (Equation 6).
//!
//! All computations are in `f64`. The crate is `#![forbid(unsafe_code)]` and
//! has no dependency other than `serde` for dataset serialisation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bisector;
pub mod distance;
pub mod filtering;
pub mod point;
pub mod polyline;
pub mod rect;
pub mod voronoi;
pub mod zorder;

pub use bisector::HalfPlane;
pub use distance::{min_dist_query_rect, point_route_distance, point_route_distance_sq};
pub use filtering::FilteringSpace;
pub use point::Point;
pub use polyline::{detour_ratio, mean_interval, straight_line_distance, travel_distance};
pub use rect::Rect;
pub use voronoi::VoronoiFilter;
pub use zorder::{CellGrid, MAX_GRID_BITS};

/// Numerical tolerance used by geometric predicates when comparing squared
/// distances. Chosen so that coordinates on a city scale (hundreds of
/// kilometres expressed in metres) keep ~1 cm of slack.
pub const EPSILON: f64 = 1e-9;
