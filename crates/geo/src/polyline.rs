//! Polyline measures: travel distance `ψ(R)` and straight-line span.

use crate::point::Point;

/// Travel distance `ψ(R)` of Equation 6: the sum of consecutive-point
/// distances along the route. Zero for routes with fewer than two points.
pub fn travel_distance(route: &[Point]) -> f64 {
    route.windows(2).map(|w| w[0].distance(&w[1])).sum()
}

/// Straight-line distance between the first and last points of a route
/// (the paper's `ψ(se)` when applied to a query's endpoints).
/// Zero for routes with fewer than two points.
pub fn straight_line_distance(route: &[Point]) -> f64 {
    match (route.first(), route.last()) {
        (Some(a), Some(b)) if route.len() >= 2 => a.distance(b),
        _ => 0.0,
    }
}

/// Ratio of travel distance to straight-line distance (the quantity whose
/// distribution Figure 6 reports). Returns `None` when the straight-line
/// distance is zero (loops or degenerate routes).
pub fn detour_ratio(route: &[Point]) -> Option<f64> {
    let sl = straight_line_distance(route);
    if sl <= f64::EPSILON {
        None
    } else {
        Some(travel_distance(route) / sl)
    }
}

/// Mean interval length `I = ψ(Q) / |Q|` used by the experiment section to
/// characterise query granularity (Table 4). Returns 0 for empty routes.
pub fn mean_interval(route: &[Point]) -> f64 {
    if route.is_empty() {
        0.0
    } else {
        travel_distance(route) / route.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn travel_distance_sums_segments() {
        let r = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 4.0),
            Point::new(3.0, 10.0),
        ];
        assert!((travel_distance(&r) - 11.0).abs() < 1e-12);
        assert_eq!(travel_distance(&[Point::new(1.0, 1.0)]), 0.0);
        assert_eq!(travel_distance(&[]), 0.0);
    }

    #[test]
    fn straight_line_and_detour() {
        let r = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 5.0),
            Point::new(5.0, 5.0),
        ];
        assert!((straight_line_distance(&r) - 50f64.sqrt()).abs() < 1e-12);
        let ratio = detour_ratio(&r).unwrap();
        assert!((ratio - 10.0 / 50f64.sqrt()).abs() < 1e-12);
        assert!(ratio >= 1.0);
    }

    #[test]
    fn detour_ratio_none_for_loop() {
        let r = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.0),
        ];
        assert!(detour_ratio(&r).is_none());
    }

    #[test]
    fn mean_interval_matches_definition() {
        let r = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(8.0, 0.0),
        ];
        assert!((mean_interval(&r) - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(mean_interval(&[]), 0.0);
    }
}
