//! Axis-aligned minimum bounding rectangles (MBRs).

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle, used as the minimum bounding rectangle of
/// R-tree nodes and of transitions (the paper's "maximum bounded box").
///
/// A `Rect` is always non-empty in the sense that `min <= max` on both axes;
/// a degenerate rectangle with `min == max` represents a single point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two opposite corners, normalising the order
    /// of the coordinates.
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The degenerate rectangle covering exactly one point.
    #[inline]
    pub fn from_point(p: Point) -> Self {
        Rect { min: p, max: p }
    }

    /// The smallest rectangle containing all `points`.
    ///
    /// Returns `None` for an empty slice.
    pub fn from_points(points: &[Point]) -> Option<Self> {
        let first = *points.first()?;
        let mut r = Rect::from_point(first);
        for p in &points[1..] {
            r.expand_to_point(p);
        }
        Some(r)
    }

    /// An "empty" rectangle useful as the identity for unions: any union with
    /// it yields the other rectangle. Its `min` is +inf and `max` is -inf.
    pub fn empty() -> Self {
        Rect {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Whether this is the identity rectangle produced by [`Rect::empty`].
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width along the x axis.
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height along the y axis.
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half-perimeter (the "margin" used by R*-style heuristics).
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// Center point of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(&self.max)
    }

    /// The four corners, in counterclockwise order starting at `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// Whether the rectangle contains the point (boundary inclusive).
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether `other` lies entirely inside `self` (boundary inclusive).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        !other.is_empty()
            && self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// Whether the two rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !(self.is_empty()
            || other.is_empty()
            || self.min.x > other.max.x
            || other.min.x > self.max.x
            || self.min.y > other.max.y
            || other.min.y > self.max.y)
    }

    /// Smallest rectangle containing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Grows the rectangle in place so that it covers `p`.
    pub fn expand_to_point(&mut self, p: &Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Grows the rectangle in place so that it covers `other`.
    pub fn expand_to_rect(&mut self, other: &Rect) {
        *self = self.union(other);
    }

    /// Area of the intersection with `other` (0 when disjoint).
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = (self.max.x.min(other.max.x) - self.min.x.max(other.min.x)).max(0.0);
        let h = (self.max.y.min(other.max.y) - self.min.y.max(other.min.y)).max(0.0);
        w * h
    }

    /// Increase in area needed to enlarge `self` to cover `other`.
    ///
    /// This is the quantity minimised by the R-tree `ChooseSubtree` step.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Squared minimum distance from `p` to any point of the rectangle
    /// (0 when `p` is inside).
    #[inline]
    pub fn min_dist_sq(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// Minimum distance from `p` to the rectangle (the `MinDist` metric used
    /// in best-first traversal, Equation 3).
    #[inline]
    pub fn min_dist(&self, p: &Point) -> f64 {
        self.min_dist_sq(p).sqrt()
    }

    /// Squared maximum distance from `p` to any point of the rectangle.
    #[inline]
    pub fn max_dist_sq(&self, p: &Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        dx * dx + dy * dy
    }

    /// Maximum distance from `p` to any point of the rectangle.
    #[inline]
    pub fn max_dist(&self, p: &Point) -> f64 {
        self.max_dist_sq(p).sqrt()
    }

    /// The rectangle grown by `margin` on every side (non-positive margins
    /// return the rectangle unchanged; the empty rectangle stays empty).
    pub fn expanded(&self, margin: f64) -> Rect {
        if self.is_empty() || margin.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return *self;
        }
        Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Minimum distance between two rectangles (0 when they intersect).
    pub fn min_dist_rect(&self, other: &Rect) -> f64 {
        let dx = (self.min.x - other.max.x)
            .max(0.0)
            .max(other.min.x - self.max.x);
        let dy = (self.min.y - other.max.y)
            .max(0.0)
            .max(other.min.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(ax: f64, ay: f64, bx: f64, by: f64) -> Rect {
        Rect::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn new_normalises_corners() {
        let a = Rect::new(Point::new(3.0, 4.0), Point::new(1.0, 2.0));
        assert_eq!(a.min, Point::new(1.0, 2.0));
        assert_eq!(a.max, Point::new(3.0, 4.0));
    }

    #[test]
    fn area_margin_center() {
        let a = r(0.0, 0.0, 4.0, 2.0);
        assert_eq!(a.area(), 8.0);
        assert_eq!(a.margin(), 6.0);
        assert_eq!(a.center(), Point::new(2.0, 1.0));
    }

    #[test]
    fn empty_rect_identity_for_union() {
        let e = Rect::empty();
        let a = r(1.0, 1.0, 2.0, 2.0);
        assert!(e.is_empty());
        assert_eq!(e.union(&a), a);
        assert_eq!(a.union(&e), a);
        assert_eq!(e.area(), 0.0);
    }

    #[test]
    fn containment_and_intersection() {
        let big = r(0.0, 0.0, 10.0, 10.0);
        let small = r(2.0, 2.0, 3.0, 3.0);
        let outside = r(11.0, 11.0, 12.0, 12.0);
        let overlapping = r(9.0, 9.0, 11.0, 11.0);
        assert!(big.contains_rect(&small));
        assert!(!small.contains_rect(&big));
        assert!(big.intersects(&small));
        assert!(!big.intersects(&outside));
        assert!(big.intersects(&overlapping));
        assert!(big.contains_point(&Point::new(10.0, 10.0)));
        assert!(!big.contains_point(&Point::new(10.0001, 10.0)));
    }

    #[test]
    fn from_points_covers_all() {
        let pts = vec![
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ];
        let mbr = Rect::from_points(&pts).unwrap();
        for p in &pts {
            assert!(mbr.contains_point(p));
        }
        assert_eq!(mbr.min, Point::new(-2.0, -1.0));
        assert_eq!(mbr.max, Point::new(4.0, 5.0));
        assert!(Rect::from_points(&[]).is_none());
    }

    #[test]
    fn min_and_max_dist() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let inside = Point::new(1.0, 1.0);
        let right = Point::new(5.0, 1.0);
        let diag = Point::new(5.0, 6.0);
        assert_eq!(a.min_dist(&inside), 0.0);
        assert_eq!(a.min_dist(&right), 3.0);
        assert_eq!(a.min_dist(&diag), 5.0);
        // Max dist from the inside point is to the farthest corner (0,0)->... all corners sqrt(2)
        assert!((a.max_dist(&inside) - 2f64.sqrt()).abs() < 1e-12);
        // From (5,1): farthest corner is (0,0) or (0,2): sqrt(25+1)
        assert!((a.max_dist(&right) - 26f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn min_dist_rect_pairs() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(4.0, 5.0, 6.0, 7.0);
        let c = r(0.5, 0.5, 2.0, 2.0);
        assert!((a.min_dist_rect(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.min_dist_rect(&c), 0.0);
    }

    #[test]
    fn enlargement_and_intersection_area() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection_area(&b), 1.0);
        assert_eq!(a.enlargement(&b), 9.0 - 4.0);
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn corners_are_inside() {
        let a = r(-1.0, -2.0, 3.0, 4.0);
        for c in a.corners() {
            assert!(a.contains_point(&c));
        }
    }

    #[test]
    fn expanded_grows_every_side() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.expanded(3.0), r(-3.0, -3.0, 5.0, 5.0));
        assert_eq!(a.expanded(0.0), a);
        assert_eq!(a.expanded(-1.0), a, "negative margins are ignored");
        assert_eq!(a.expanded(f64::NAN), a, "NaN margins are ignored");
        assert!(Rect::empty().expanded(10.0).is_empty());
    }

    #[test]
    fn expand_to_point_grows_minimally() {
        let mut a = Rect::from_point(Point::new(1.0, 1.0));
        a.expand_to_point(&Point::new(3.0, 0.0));
        assert_eq!(a, r(1.0, 0.0, 3.0, 1.0));
    }
}
