//! Property-based tests for the Z-order cell grid the sharded service
//! partitions space with: exact bijectivity of the bit interleaving,
//! point→cell→rect containment, and the locality guarantees shard
//! assignment relies on.

use proptest::prelude::*;
use rknnt_geo::{CellGrid, Point, Rect};

fn pt() -> impl Strategy<Value = Point> {
    (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y))
}

fn grid() -> impl Strategy<Value = CellGrid> {
    (pt(), pt(), 1u32..7).prop_map(|(a, b, bits)| CellGrid::new(Rect::new(a, b), bits))
}

proptest! {
    /// interleave/deinterleave are exact inverses on the grid domain.
    #[test]
    fn morton_round_trip_is_bijective(x in 0u32..(1 << 15), y in 0u32..(1 << 15)) {
        let z = CellGrid::interleave(x, y);
        prop_assert_eq!(CellGrid::deinterleave(z), (x, y));
    }

    /// And the other way round: every index below 4^bits decodes to a cell
    /// that re-encodes to the same index.
    #[test]
    fn morton_index_round_trip(z in 0u64..(1u64 << 30)) {
        let (x, y) = CellGrid::deinterleave(z);
        prop_assert_eq!(CellGrid::interleave(x, y), z);
    }

    /// The cell a point maps to really contains the point (the floor is
    /// post-corrected against floating-point boundary rounding), so routing
    /// data to the owner of `cell_of(p)` never loses it spatially.
    #[test]
    fn point_maps_into_containing_cell(g in grid(), p in pt()) {
        let mbr = g.mbr();
        prop_assume!(!mbr.is_empty());
        prop_assume!(mbr.contains_point(&p));
        let z = g.cell_of(&p);
        prop_assert!(z < g.num_cells());
        prop_assert!(g.cell_rect(z).contains_point(&p), "cell {} does not contain {}", z, p);
    }

    /// Out-of-bounds points clamp to a valid cell instead of escaping the
    /// grid.
    #[test]
    fn clamping_keeps_every_point_on_the_grid(g in grid(), p in pt()) {
        let z = g.cell_of(&p);
        prop_assert!(z < g.num_cells());
    }

    /// Grid-adjacent cells share a boundary: their rectangles intersect but
    /// overlap with zero area (the monotone-locality half of the cell
    /// mapping contract).
    #[test]
    fn axis_neighbours_share_a_boundary(g in grid(), z in 0u64..4096) {
        prop_assume!(!g.mbr().is_empty());
        prop_assume!(g.mbr().area() > 1e-6);
        let z = z % g.num_cells();
        let (x, y) = CellGrid::deinterleave(z);
        let side = g.side();
        let mut neighbours = Vec::new();
        if x + 1 < side { neighbours.push(CellGrid::interleave(x + 1, y)); }
        if y + 1 < side { neighbours.push(CellGrid::interleave(x, y + 1)); }
        let rect = g.cell_rect(z);
        for n in neighbours {
            let other = g.cell_rect(n);
            prop_assert!(rect.intersects(&other), "adjacent cells must touch");
            prop_assert!(rect.intersection_area(&other) <= 1e-9, "adjacent cells must not overlap");
        }
    }

    /// Z-order locality: two indices sharing their high prefix at block
    /// level `l` lie inside the same aligned 2^l × 2^l block of cells, so a
    /// contiguous Z-range slice stays spatially coherent.
    #[test]
    fn shared_prefix_means_shared_block(x1 in 0u32..64, y1 in 0u32..64,
                                        x2 in 0u32..64, y2 in 0u32..64,
                                        l in 1u32..6) {
        let z1 = CellGrid::interleave(x1, y1);
        let z2 = CellGrid::interleave(x2, y2);
        let same_prefix = (z1 >> (2 * l)) == (z2 >> (2 * l));
        let same_block = (x1 >> l) == (x2 >> l) && (y1 >> l) == (y2 >> l);
        prop_assert_eq!(same_prefix, same_block);
    }

    /// Shard assignment is monotone, exhaustive and balanced for every
    /// shard count the service supports.
    #[test]
    fn shard_slices_partition_the_curve(g in grid(), shards in 1usize..9) {
        let mut last = 0usize;
        let mut counts = vec![0u64; shards];
        for z in 0..g.num_cells() {
            let s = g.shard_of_cell(z, shards);
            prop_assert!(s < shards);
            prop_assert!(s >= last);
            last = s;
            counts[s] += 1;
        }
        if g.num_cells() >= shards as u64 {
            let min = *counts.iter().min().unwrap();
            let max = *counts.iter().max().unwrap();
            prop_assert!(min >= 1, "every shard owns at least one cell");
            prop_assert!(max - min <= 1, "slice sizes differ by more than one");
        }
    }

    /// A point always lands inside the territory of the shard it is
    /// assigned to (territory = union of the shard's cell rects).
    #[test]
    fn point_lands_in_its_shards_territory(g in grid(), p in pt(), shards in 1usize..9) {
        prop_assume!(!g.mbr().is_empty());
        prop_assume!(g.mbr().contains_point(&p));
        let s = g.shard_of_point(&p, shards);
        prop_assert!(g.shard_territory(s, shards).contains_point(&p));
    }
}
