//! Property-based tests for the geometric predicates that RkNNT pruning
//! soundness depends on.

use proptest::prelude::*;
use rknnt_geo::{point_route_distance, FilteringSpace, HalfPlane, Point, Rect, VoronoiFilter};

fn pt() -> impl Strategy<Value = Point> {
    (-1000.0f64..1000.0, -1000.0f64..1000.0).prop_map(|(x, y)| Point::new(x, y))
}

fn rect() -> impl Strategy<Value = Rect> {
    (pt(), pt()).prop_map(|(a, b)| Rect::new(a, b))
}

fn route(max_len: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(pt(), 1..max_len)
}

proptest! {
    /// The half-plane membership test must agree exactly with the distance
    /// comparison it encodes (Lemma 2's premise).
    #[test]
    fn half_plane_matches_distance(r in pt(), q in pt(), p in pt()) {
        prop_assume!(r.distance(&q) > 1e-6);
        let hp = HalfPlane::closer_to(r, q);
        let by_dist = p.distance(&r) <= p.distance(&q) + 1e-6;
        let by_hp = hp.contains_point(&p);
        // Allow disagreement only within the tolerance band around the bisector.
        if (p.distance(&r) - p.distance(&q)).abs() > 1e-6 {
            prop_assert_eq!(by_hp, by_dist);
        }
    }

    /// If a rectangle is fully contained in a half-plane then every sampled
    /// point of the rectangle is contained too (soundness of MBR pruning).
    #[test]
    fn half_plane_rect_containment_sound(r in pt(), q in pt(), rc in rect(),
                                         sx in 0.0f64..1.0, sy in 0.0f64..1.0) {
        prop_assume!(r.distance(&q) > 1e-6);
        let hp = HalfPlane::closer_to(r, q);
        if hp.contains_rect(&rc) {
            let p = Point::new(
                rc.min.x + rc.width() * sx,
                rc.min.y + rc.height() * sy,
            );
            prop_assert!(hp.contains_point(&p));
        }
    }

    /// The filtering space is the intersection of per-query-point half planes.
    #[test]
    fn filtering_space_is_intersection(r in pt(), q in route(6), p in pt()) {
        let fs = FilteringSpace::new(r, &q);
        let expected = q.iter().all(|qi| HalfPlane::closer_to(r, *qi).contains_point(&p));
        prop_assert_eq!(fs.contains_point(&p), expected);
    }

    /// Voronoi point membership equals the nearest-generator rule.
    #[test]
    fn voronoi_point_matches_nearest_generator(rp in route(6), qp in route(6), p in pt()) {
        let vf = VoronoiFilter::new(rp.clone(), qp.clone());
        let d_r = point_route_distance(&p, &rp);
        let d_q = point_route_distance(&p, &qp);
        if (d_r - d_q).abs() > 1e-6 {
            prop_assert_eq!(vf.contains_point(&p), d_r < d_q);
        }
    }

    /// Voronoi rectangle containment is sound: accepted rectangles only
    /// contain points that pass the exact point test.
    #[test]
    fn voronoi_rect_containment_sound(rp in route(6), qp in route(6), rc in rect(),
                                      sx in 0.0f64..1.0, sy in 0.0f64..1.0) {
        let vf = VoronoiFilter::new(rp, qp);
        if vf.contains_rect(&rc) {
            let p = Point::new(rc.min.x + rc.width() * sx, rc.min.y + rc.height() * sy);
            prop_assert!(vf.contains_point(&p));
        }
    }

    /// MBR invariants: union contains both operands; min_dist <= max_dist;
    /// min_dist is zero exactly when the point is inside.
    #[test]
    fn rect_metric_invariants(a in rect(), b in rect(), p in pt()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(a.min_dist(&p) <= a.max_dist(&p) + 1e-9);
        prop_assert_eq!(a.min_dist(&p) == 0.0, a.contains_point(&p));
        prop_assert!(a.enlargement(&b) >= -1e-9);
    }

    /// Point-route distance is bounded by the distance to any single vertex.
    #[test]
    fn point_route_distance_lower_bound(p in pt(), r in route(8), idx in any::<prop::sample::Index>()) {
        let d = point_route_distance(&p, &r);
        let v = r[idx.index(r.len())];
        prop_assert!(d <= p.distance(&v) + 1e-9);
    }

    /// Strict containment implies non-strict containment, for both the
    /// half-plane and the per-point filtering space, on points and rects.
    #[test]
    fn strict_implies_nonstrict(r in pt(), q in route(5), p in pt(), rc in rect()) {
        let fs = FilteringSpace::new(r, &q);
        if fs.strictly_contains_point(&p) {
            prop_assert!(fs.contains_point(&p));
        }
        if fs.strictly_contains_rect(&rc) {
            prop_assert!(fs.contains_rect(&rc));
        }
        if let Some(q0) = q.first() {
            let hp = HalfPlane::closer_to(r, *q0);
            if hp.strictly_contains_rect(&rc) {
                prop_assert!(hp.contains_rect(&rc));
            }
        }
    }

    /// The strict Voronoi predicates never accept anything the non-strict
    /// ones reject, and the strict rect test is sound for sampled points.
    #[test]
    fn strict_voronoi_sound(rp in route(5), qp in route(5), rc in rect(),
                            sx in 0.0f64..1.0, sy in 0.0f64..1.0) {
        let vf = VoronoiFilter::new(rp, qp);
        if vf.strictly_contains_rect(&rc) {
            prop_assert!(vf.contains_rect(&rc));
            let p = Point::new(rc.min.x + rc.width() * sx, rc.min.y + rc.height() * sy);
            prop_assert!(vf.contains_point(&p));
        }
        let centre = rc.center();
        if vf.strictly_contains_point(&centre) {
            prop_assert!(vf.contains_point(&centre));
        }
    }

    /// A point exactly on the bisector (equidistant from r and q) is never
    /// strictly contained — the tie-safety property the RkNNT pruning relies
    /// on.
    #[test]
    fn ties_are_not_strictly_contained(a in pt(), b in pt(), t in 0.0f64..1.0) {
        prop_assume!(a.distance(&b) > 1e-3);
        // Construct a point equidistant from a and b: any point on the
        // perpendicular bisector. Parameterise by sliding along the bisector.
        let mid = a.midpoint(&b);
        let dir = Point::new(-(b.y - a.y), b.x - a.x);
        let on_bisector = Point::new(mid.x + dir.x * (t - 0.5), mid.y + dir.y * (t - 0.5));
        let hp = HalfPlane::closer_to(a, b);
        // Floating error can land the point a hair off the bisector; allow
        // the strict test to accept only when it is genuinely closer.
        if (on_bisector.distance(&a) - on_bisector.distance(&b)).abs() < 1e-9 {
            prop_assert!(!hp.strictly_contains_point(&on_bisector));
        }
    }
}
