//! Partition-aware bulk build: split one global dataset into per-shard
//! stores while keeping the *global* id space authoritative.
//!
//! The sharded service assigns every route and transition a global id in
//! exactly the order the unsharded stores would (invalid items are skipped
//! and consume no id, matching [`RouteStore::bulk_build`] /
//! [`TransitionStore::bulk_build`]), then hands each item to the shard an
//! assignment function picks. Each shard gets its own dense *local* id
//! space — its stores are plain [`RouteStore`]s / [`TransitionStore`]s and
//! know nothing about sharding — and an [`IdSpace`] records the local→global
//! mapping so per-shard results can be merged back into global terms.

use crate::ids::{RouteId, TransitionId};
use crate::route_store::RouteStore;
use crate::transition_store::TransitionStore;
use rknnt_geo::Point;
use rknnt_rtree::RTreeConfig;

/// A shard's local→global id mapping: local slot `i` (dense, in insertion
/// order) corresponds to global raw id `l2g[i]`.
///
/// The sequence is strictly increasing — shards receive items in global id
/// order — so global→local lookups are a binary search.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IdSpace {
    l2g: Vec<u32>,
}

impl IdSpace {
    /// An empty id space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of local slots mapped.
    pub fn len(&self) -> usize {
        self.l2g.len()
    }

    /// Whether no slot is mapped yet.
    pub fn is_empty(&self) -> bool {
        self.l2g.is_empty()
    }

    /// Appends the next local slot, mapping it to global raw id `global`.
    /// Panics if `global` does not extend the strictly increasing sequence.
    pub fn push(&mut self, global: u32) {
        if let Some(&last) = self.l2g.last() {
            assert!(global > last, "global ids must arrive in increasing order");
        }
        self.l2g.push(global);
    }

    /// Global raw id of local slot `local`, if mapped.
    pub fn to_global(&self, local: u32) -> Option<u32> {
        self.l2g.get(local as usize).copied()
    }

    /// Local slot of global raw id `global`, if this shard owns it.
    pub fn to_local(&self, global: u32) -> Option<u32> {
        self.l2g.binary_search(&global).ok().map(|i| i as u32)
    }

    /// The full local→global table.
    pub fn as_slice(&self) -> &[u32] {
        &self.l2g
    }
}

/// Output of [`partition_routes`]: one store + id space per shard, plus the
/// global owner table.
#[derive(Debug)]
pub struct RoutePartition {
    /// Per-shard route stores, locally dense.
    pub stores: Vec<RouteStore>,
    /// Per-shard local→global id spaces.
    pub spaces: Vec<IdSpace>,
    /// Owner shard of each *global* route id (dense, one entry per accepted
    /// route).
    pub owners: Vec<u32>,
    /// Routes rejected by store validation (no id consumed).
    pub skipped: usize,
}

/// Splits `routes` across `shards` stores by `assign`, preserving the
/// global id order of [`RouteStore::bulk_build`]: accepted routes get dense
/// global ids in input order, and each shard's local ids are dense in that
/// same order.
pub fn partition_routes<F>(
    config: RTreeConfig,
    routes: Vec<Vec<Point>>,
    shards: usize,
    assign: F,
) -> RoutePartition
where
    F: Fn(&[Point]) -> usize,
{
    let shards = shards.max(1);
    let mut per_shard: Vec<Vec<Vec<Point>>> = vec![Vec::new(); shards];
    let mut spaces = vec![IdSpace::new(); shards];
    let mut owners = Vec::new();
    let mut skipped = 0usize;
    for route in routes {
        // Mirror RouteStore::insert_route validation so ids line up with the
        // unsharded bulk build.
        if route.len() < 2 || route.iter().any(|p| !p.is_finite()) {
            skipped += 1;
            continue;
        }
        let shard = assign(&route).min(shards - 1);
        let global = owners.len() as u32;
        owners.push(shard as u32);
        spaces[shard].push(global);
        per_shard[shard].push(route);
    }
    let stores = per_shard
        .into_iter()
        .map(|list| {
            let (store, rejected) = RouteStore::bulk_build(config, list);
            debug_assert_eq!(rejected, 0, "pre-validated routes cannot be rejected");
            store
        })
        .collect();
    RoutePartition {
        stores,
        spaces,
        owners,
        skipped,
    }
}

/// Output of [`partition_transitions`]: one store + id space per shard,
/// plus the global owner table.
#[derive(Debug)]
pub struct TransitionPartition {
    /// Per-shard transition stores, locally dense.
    pub stores: Vec<TransitionStore>,
    /// Per-shard local→global id spaces.
    pub spaces: Vec<IdSpace>,
    /// Owner shard of each *global* transition id.
    pub owners: Vec<u32>,
    /// Transition pairs rejected by store validation (no id consumed).
    pub skipped: usize,
}

/// Splits transition `pairs` across `shards` stores by `assign`, with the
/// same global-id discipline as [`partition_routes`].
pub fn partition_transitions<F>(
    config: RTreeConfig,
    pairs: Vec<(Point, Point)>,
    shards: usize,
    assign: F,
) -> TransitionPartition
where
    F: Fn(&Point, &Point) -> usize,
{
    let shards = shards.max(1);
    let mut per_shard: Vec<Vec<(Point, Point)>> = vec![Vec::new(); shards];
    let mut spaces = vec![IdSpace::new(); shards];
    let mut owners = Vec::new();
    let mut skipped = 0usize;
    for (origin, destination) in pairs {
        // Mirror TransitionStore::insert validation.
        if !origin.is_finite() || !destination.is_finite() {
            skipped += 1;
            continue;
        }
        let shard = assign(&origin, &destination).min(shards - 1);
        let global = owners.len() as u32;
        owners.push(shard as u32);
        spaces[shard].push(global);
        per_shard[shard].push((origin, destination));
    }
    let stores = per_shard
        .into_iter()
        .map(|list| TransitionStore::bulk_build(config, list))
        .collect();
    TransitionPartition {
        stores,
        spaces,
        owners,
        skipped,
    }
}

/// Convenience: translate a shard-local [`TransitionId`] to its global id.
pub fn global_transition(space: &IdSpace, local: TransitionId) -> Option<TransitionId> {
    space.to_global(local.raw()).map(TransitionId)
}

/// Convenience: translate a shard-local [`RouteId`] to its global id.
pub fn global_route(space: &IdSpace, local: RouteId) -> Option<RouteId> {
    space.to_global(local.raw()).map(RouteId)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn id_space_round_trips_and_binary_searches() {
        let mut space = IdSpace::new();
        for g in [2u32, 5, 9] {
            space.push(g);
        }
        assert_eq!(space.len(), 3);
        assert_eq!(space.to_global(1), Some(5));
        assert_eq!(space.to_local(9), Some(2));
        assert_eq!(space.to_local(3), None);
        assert_eq!(space.to_global(7), None);
    }

    #[test]
    fn routes_partition_preserves_global_id_order() {
        let config = RTreeConfig::new(8, 3);
        let routes = vec![
            vec![p(0.0, 0.0), p(1.0, 0.0)],   // shard 0, global 0
            vec![p(9.0, 9.0)],                // invalid: single point
            vec![p(10.0, 0.0), p(11.0, 0.0)], // shard 1, global 1
            vec![p(2.0, 0.0), p(3.0, 0.0)],   // shard 0, global 2
        ];
        let part = partition_routes(config, routes.clone(), 2, |pts| {
            usize::from(pts[0].x >= 5.0)
        });
        assert_eq!(part.skipped, 1);
        assert_eq!(part.owners, vec![0, 1, 0]);
        assert_eq!(part.spaces[0].as_slice(), &[0, 2]);
        assert_eq!(part.spaces[1].as_slice(), &[1]);
        // The per-shard stores hold exactly their slices, locally dense.
        assert_eq!(part.stores[0].num_routes(), 2);
        assert_eq!(part.stores[1].num_routes(), 1);
        assert_eq!(part.stores[0].route_points(RouteId(1)), &routes[3][..]);
        // Global ids line up with an unsharded bulk build.
        let (global, skipped) = RouteStore::bulk_build(config, routes);
        assert_eq!(skipped, 1);
        for (g, owner) in part.owners.iter().enumerate() {
            let local = part.spaces[*owner as usize].to_local(g as u32).unwrap();
            assert_eq!(
                part.stores[*owner as usize].route_points(RouteId(local)),
                global.route_points(RouteId(g as u32))
            );
        }
    }

    #[test]
    fn transitions_partition_preserves_global_id_order() {
        let config = RTreeConfig::new(8, 3);
        let pairs = vec![
            (p(0.0, 0.0), p(1.0, 1.0)),
            (p(f64::NAN, 0.0), p(1.0, 1.0)), // invalid
            (p(10.0, 0.0), p(12.0, 1.0)),
            (p(3.0, 0.0), p(2.0, 1.0)),
        ];
        let part = partition_transitions(config, pairs, 2, |o, _| usize::from(o.x >= 5.0));
        assert_eq!(part.skipped, 1);
        assert_eq!(part.owners, vec![0, 1, 0]);
        assert_eq!(part.stores[0].len(), 2);
        assert_eq!(part.stores[1].len(), 1);
        let g = global_transition(&part.spaces[1], TransitionId(0)).unwrap();
        assert_eq!(g, TransitionId(1));
    }

    #[test]
    fn assignment_out_of_range_clamps_to_last_shard() {
        let config = RTreeConfig::new(8, 3);
        let part = partition_routes(config, vec![vec![p(0.0, 0.0), p(1.0, 0.0)]], 2, |_| 99);
        assert_eq!(part.owners, vec![1]);
    }
}
