//! The route store: RR-tree over route points plus the PList inverted index.

use crate::ids::{RouteId, StopId};
use crate::types::Route;
use rknnt_geo::Point;
use rknnt_rtree::{RTree, RTreeConfig};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The PList of Section 4.1.2: for every route point (stop), the list of
/// routes that pass through it — the crossover route set `C(r)` of
/// Definition 7.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PList {
    lists: Vec<Vec<RouteId>>,
}

impl PList {
    /// Crossover route set of a stop. Empty for unknown stops.
    pub fn crossover(&self, stop: StopId) -> &[RouteId] {
        self.lists
            .get(stop.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of stops tracked.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// Whether the PList tracks no stops at all.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    fn ensure(&mut self, stop: StopId) -> &mut Vec<RouteId> {
        if stop.index() >= self.lists.len() {
            self.lists.resize_with(stop.index() + 1, Vec::new);
        }
        &mut self.lists[stop.index()]
    }

    fn add(&mut self, stop: StopId, route: RouteId) {
        let list = self.ensure(stop);
        if !list.contains(&route) {
            list.push(route);
        }
    }

    fn remove(&mut self, stop: StopId, route: RouteId) {
        if let Some(list) = self.lists.get_mut(stop.index()) {
            list.retain(|r| *r != route);
        }
    }
}

/// Key used to deduplicate stops that share the exact same coordinates, so a
/// bus stop served by many routes appears once in the RR-tree and its
/// crossover set carries all serving routes.
fn coord_key(p: &Point) -> (u64, u64) {
    (p.x.to_bits(), p.y.to_bits())
}

/// The route store: owns the routes, the distinct stops, the RR-tree over
/// stops and the PList.
///
/// Routes can be added and removed dynamically; the RR-tree and PList are
/// maintained incrementally (the paper's index "supports dynamic updating").
#[derive(Debug, Clone)]
pub struct RouteStore {
    routes: Vec<Option<Route>>,
    stops: Vec<Point>,
    stop_lookup: HashMap<(u64, u64), StopId>,
    plist: PList,
    rtree: RTree<StopId>,
    live_routes: usize,
}

impl Default for RouteStore {
    fn default() -> Self {
        Self::new(RTreeConfig::default())
    }
}

impl RouteStore {
    /// Creates an empty store whose RR-tree uses the given fan-out.
    pub fn new(config: RTreeConfig) -> Self {
        RouteStore {
            routes: Vec::new(),
            stops: Vec::new(),
            stop_lookup: HashMap::new(),
            plist: PList::default(),
            rtree: RTree::new(config),
            live_routes: 0,
        }
    }

    /// Builds a store from a collection of point sequences, bulk-loading the
    /// RR-tree. Sequences with fewer than two points or with non-finite
    /// coordinates are skipped and the number of skipped sequences is
    /// returned alongside the store.
    pub fn bulk_build(config: RTreeConfig, routes: Vec<Vec<Point>>) -> (Self, usize) {
        let mut store = RouteStore::new(config);
        let mut skipped = 0;
        // First register routes and stops without touching the R-tree...
        for points in routes {
            if points.len() < 2 || points.iter().any(|p| !p.is_finite()) {
                skipped += 1;
                continue;
            }
            let id = RouteId(store.routes.len() as u32);
            for p in &points {
                let stop = store.intern_stop(*p);
                store.plist.add(stop, id);
            }
            store.routes.push(Some(Route { id, points }));
            store.live_routes += 1;
        }
        // ...then bulk-load the RR-tree over the distinct stops.
        let items: Vec<(Point, StopId)> = store
            .stops
            .iter()
            .enumerate()
            .map(|(i, p)| (*p, StopId(i as u32)))
            .collect();
        store.rtree = RTree::bulk_load(config, items);
        (store, skipped)
    }

    fn intern_stop(&mut self, p: Point) -> StopId {
        if let Some(id) = self.stop_lookup.get(&coord_key(&p)) {
            return *id;
        }
        let id = StopId(self.stops.len() as u32);
        self.stops.push(p);
        self.stop_lookup.insert(coord_key(&p), id);
        id
    }

    /// Adds a route, returning its id, or `None` when fewer than two points
    /// are supplied or any coordinate is non-finite.
    ///
    /// Validation happens before any mutation: NaN/±inf points would poison
    /// R-tree MBRs and the strict geometric predicates, so they are rejected
    /// at the store boundary and a rejected route leaves the store untouched.
    pub fn insert_route(&mut self, points: Vec<Point>) -> Option<RouteId> {
        if points.len() < 2 || points.iter().any(|p| !p.is_finite()) {
            return None;
        }
        let id = RouteId(self.routes.len() as u32);
        for p in &points {
            let is_new = !self.stop_lookup.contains_key(&coord_key(p));
            let stop = self.intern_stop(*p);
            if is_new {
                self.rtree.insert(*p, stop);
            }
            self.plist.add(stop, id);
        }
        self.routes.push(Some(Route { id, points }));
        self.live_routes += 1;
        Some(id)
    }

    /// Removes a route. Stops that no longer belong to any route are removed
    /// from the RR-tree. Returns `false` when the id is unknown or already
    /// removed.
    pub fn remove_route(&mut self, id: RouteId) -> bool {
        let Some(slot) = self.routes.get_mut(id.index()) else {
            return false;
        };
        let Some(route) = slot.take() else {
            return false;
        };
        self.live_routes -= 1;
        // Deduplicate per-route occurrences first: a self-intersecting route
        // (figure-eight) visits the same stop twice, and the PList/RR-tree
        // cleanup below must run exactly once per *distinct* stop.
        let mut distinct: Vec<(u64, u64)> = Vec::with_capacity(route.points.len());
        for p in &route.points {
            let key = coord_key(p);
            if !distinct.contains(&key) {
                distinct.push(key);
            }
        }
        for key in distinct {
            let Some(stop) = self.stop_lookup.get(&key).copied() else {
                continue;
            };
            self.plist.remove(stop, id);
            if self.plist.crossover(stop).is_empty() {
                self.rtree.remove(&self.stops[stop.index()], &stop);
                self.stop_lookup.remove(&key);
            }
        }
        true
    }

    /// The route with the given id, if it exists and has not been removed.
    pub fn route(&self, id: RouteId) -> Option<&Route> {
        self.routes.get(id.index()).and_then(Option::as_ref)
    }

    /// Points of a route (convenience accessor used by the query engines).
    pub fn route_points(&self, id: RouteId) -> &[Point] {
        self.route(id).map(|r| r.points.as_slice()).unwrap_or(&[])
    }

    /// Iterates over all live routes.
    pub fn routes(&self) -> impl Iterator<Item = &Route> {
        self.routes.iter().filter_map(Option::as_ref)
    }

    /// Ids of all live routes.
    pub fn route_ids(&self) -> Vec<RouteId> {
        self.routes().map(|r| r.id).collect()
    }

    /// Number of live routes.
    pub fn num_routes(&self) -> usize {
        self.live_routes
    }

    /// Exclusive upper bound on the dense route-id space: every id this
    /// store ever handed out satisfies `id.index() < route_id_bound()`
    /// (removed routes keep their slot). Sizes per-route side tables such as
    /// the query scratch's epoch-stamped mark table, which index by
    /// `RouteId::index()` instead of hashing.
    pub fn route_id_bound(&self) -> usize {
        self.routes.len()
    }

    /// Whether the store holds no live routes.
    pub fn is_empty(&self) -> bool {
        self.live_routes == 0
    }

    /// Number of distinct stops ever interned (including stops of removed
    /// routes, whose slots remain allocated).
    pub fn num_stops(&self) -> usize {
        self.stops.len()
    }

    /// Location of a stop.
    pub fn stop_point(&self, stop: StopId) -> Point {
        self.stops[stop.index()]
    }

    /// Crossover route set `C(r)` of a stop (Definition 7).
    pub fn crossover(&self, stop: StopId) -> &[RouteId] {
        self.plist.crossover(stop)
    }

    /// The PList itself.
    pub fn plist(&self) -> &PList {
        &self.plist
    }

    /// The RR-tree over distinct stops. Leaf payloads are [`StopId`]s.
    pub fn rtree(&self) -> &RTree<StopId> {
        &self.rtree
    }

    /// Looks up the stop at exactly the given coordinates, if any.
    pub fn stop_at(&self, p: &Point) -> Option<StopId> {
        self.stop_lookup.get(&coord_key(p)).copied()
    }

    /// Exports the full logical state of the store — everything a byte-for-
    /// byte faithful reconstruction needs, including the `None` slots of
    /// removed routes (id assignment depends on slot count) and the stale
    /// stop slots no live route references any more (stop ids stay
    /// allocated). The RR-tree itself is *not* part of the state: its node
    /// layout is an implementation detail that never changes an answer, so
    /// [`RouteStore::from_state`] rebuilds it deterministically.
    pub fn export_state(&self) -> RouteStoreState {
        let mut live_stops: Vec<StopId> = self.stop_lookup.values().copied().collect();
        live_stops.sort();
        RouteStoreState {
            config: self.rtree.config(),
            routes: self.routes.clone(),
            stops: self.stops.clone(),
            live_stops,
            plist: (0..self.plist.len())
                .map(|i| self.plist.crossover(StopId(i as u32)).to_vec())
                .collect(),
        }
    }

    /// Reconstructs a store from an exported state, validating every index
    /// so a decoded-from-disk state can never panic the store. The RR-tree
    /// is bulk-loaded over the live stops in ascending id order, which is
    /// deterministic; answers are layout-independent (asserted by the
    /// recovery determinism suite).
    pub fn from_state(state: RouteStoreState) -> Result<Self, String> {
        let RouteStoreState {
            config,
            routes,
            stops,
            live_stops,
            plist,
        } = state;
        for (i, slot) in routes.iter().enumerate() {
            if let Some(route) = slot {
                if route.id.index() != i {
                    return Err(format!("route slot {i} holds id {}", route.id));
                }
                if route.points.len() < 2 {
                    return Err(format!(
                        "route {} has {} points",
                        route.id,
                        route.points.len()
                    ));
                }
            }
        }
        if plist.len() > stops.len() {
            return Err(format!(
                "plist tracks {} stops but only {} exist",
                plist.len(),
                stops.len()
            ));
        }
        for (stop, list) in plist.iter().enumerate() {
            for route in list {
                match routes.get(route.index()) {
                    Some(Some(_)) => {}
                    _ => return Err(format!("plist stop {stop} references dead route {route}")),
                }
            }
        }
        let mut stop_lookup = HashMap::with_capacity(live_stops.len());
        let mut items = Vec::with_capacity(live_stops.len());
        for stop in live_stops {
            let Some(p) = stops.get(stop.index()) else {
                return Err(format!("live stop {stop} out of range"));
            };
            if stop_lookup.insert(coord_key(p), stop).is_some() {
                return Err(format!("duplicate live stop at {p}"));
            }
            items.push((*p, stop));
        }
        let live_routes = routes.iter().filter(|slot| slot.is_some()).count();
        Ok(RouteStore {
            routes,
            stops,
            stop_lookup,
            plist: PList { lists: plist },
            rtree: RTree::bulk_load(config, items),
            live_routes,
        })
    }
}

/// The full logical state of a [`RouteStore`], as exported by
/// [`RouteStore::export_state`]: a plain-data mirror that the storage
/// engine's snapshot codec serializes and [`RouteStore::from_state`]
/// validates back into a store.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteStoreState {
    /// Fan-out configuration of the RR-tree.
    pub config: RTreeConfig,
    /// Route slots in id order; `None` marks a removed route whose id stays
    /// consumed.
    pub routes: Vec<Option<Route>>,
    /// Every stop ever interned, in id order (including stale slots).
    pub stops: Vec<Point>,
    /// Ids of the stops currently live (referenced by at least one route),
    /// ascending.
    pub live_stops: Vec<StopId>,
    /// Crossover route lists per stop id, in insertion order.
    pub plist: Vec<Vec<RouteId>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn insert_and_lookup_routes() {
        let mut store = RouteStore::default();
        let r1 = store
            .insert_route(vec![p(0.0, 0.0), p(1.0, 0.0), p(2.0, 0.0)])
            .unwrap();
        let r2 = store.insert_route(vec![p(1.0, 0.0), p(1.0, 1.0)]).unwrap();
        assert!(store.insert_route(vec![p(5.0, 5.0)]).is_none());
        assert_eq!(store.num_routes(), 2);
        assert_eq!(store.route(r1).unwrap().points.len(), 3);
        // Stop (1,0) is shared: 4 distinct stops, and its crossover has both routes.
        assert_eq!(store.num_stops(), 4);
        let shared = store.stop_at(&p(1.0, 0.0)).unwrap();
        let mut cross: Vec<RouteId> = store.crossover(shared).to_vec();
        cross.sort();
        assert_eq!(cross, vec![r1, r2]);
        assert_eq!(store.rtree().len(), 4);
    }

    #[test]
    fn remove_route_cleans_up_exclusive_stops() {
        let mut store = RouteStore::default();
        let r1 = store.insert_route(vec![p(0.0, 0.0), p(1.0, 0.0)]).unwrap();
        let r2 = store.insert_route(vec![p(1.0, 0.0), p(2.0, 0.0)]).unwrap();
        assert_eq!(store.rtree().len(), 3);
        assert!(store.remove_route(r1));
        assert!(!store.remove_route(r1), "double removal must fail");
        assert_eq!(store.num_routes(), 1);
        // Stop (0,0) was exclusive to r1 and is gone from the RR-tree; the
        // shared stop (1,0) remains, now referencing only r2.
        assert_eq!(store.rtree().len(), 2);
        assert!(store.stop_at(&p(0.0, 0.0)).is_none());
        let shared = store.stop_at(&p(1.0, 0.0)).unwrap();
        assert_eq!(store.crossover(shared), &[r2]);
        assert!(store.route(r1).is_none());
        assert_eq!(store.route_ids(), vec![r2]);
    }

    #[test]
    fn bulk_build_matches_incremental() {
        let routes = vec![
            vec![p(0.0, 0.0), p(10.0, 0.0), p(20.0, 0.0)],
            vec![p(10.0, 0.0), p(10.0, 10.0)],
            vec![p(50.0, 50.0)], // skipped: too short
            vec![p(0.0, 5.0), p(10.0, 5.0), p(20.0, 5.0), p(30.0, 5.0)],
        ];
        let (bulk, skipped) = RouteStore::bulk_build(RTreeConfig::default(), routes.clone());
        assert_eq!(skipped, 1);
        assert_eq!(bulk.num_routes(), 3);
        let mut incr = RouteStore::default();
        for r in routes {
            incr.insert_route(r);
        }
        assert_eq!(bulk.num_stops(), incr.num_stops());
        assert_eq!(bulk.rtree().len(), incr.rtree().len());
        // Shared stop present once with two crossover routes in both builds.
        for store in [&bulk, &incr] {
            let shared = store.stop_at(&p(10.0, 0.0)).unwrap();
            assert_eq!(store.crossover(shared).len(), 2);
        }
    }

    #[test]
    fn plist_is_duplicate_free() {
        let mut store = RouteStore::default();
        // A route that visits the same stop twice (a small loop).
        let r = store
            .insert_route(vec![p(0.0, 0.0), p(1.0, 1.0), p(0.0, 0.0), p(2.0, 2.0)])
            .unwrap();
        let s = store.stop_at(&p(0.0, 0.0)).unwrap();
        assert_eq!(store.crossover(s), &[r]);
        assert_eq!(store.num_stops(), 3);
    }

    #[test]
    fn figure_eight_route_round_trips_cleanly() {
        // A figure-eight visits its crossing point twice; insert → remove
        // must leave the PList, RR-tree and stop lookup exactly as if the
        // route had never existed, even with another route sharing the
        // crossing.
        let mut store = RouteStore::default();
        let shared = store
            .insert_route(vec![p(5.0, 5.0), p(50.0, 50.0)])
            .unwrap();
        let eight = store
            .insert_route(vec![
                p(0.0, 0.0),
                p(5.0, 5.0), // crossing, first visit (shared with `shared`)
                p(10.0, 0.0),
                p(10.0, 10.0),
                p(5.0, 5.0), // crossing, second visit
                p(0.0, 10.0),
            ])
            .unwrap();
        let crossing = store.stop_at(&p(5.0, 5.0)).unwrap();
        // No duplicate PList entries despite the double visit.
        let mut cross = store.crossover(crossing).to_vec();
        cross.sort();
        assert_eq!(cross, vec![shared, eight]);
        // 5 distinct stops of the eight + the far end of `shared`.
        assert_eq!(store.rtree().len(), 6);
        store.rtree().check_invariants().unwrap();

        assert!(store.remove_route(eight));
        // The crossing stays (still used by `shared`) with exactly one
        // crossover entry; the eight's exclusive stops are all gone.
        assert_eq!(store.crossover(crossing), &[shared]);
        assert_eq!(store.rtree().len(), 2);
        store.rtree().check_invariants().unwrap();
        for q in [p(0.0, 0.0), p(10.0, 0.0), p(10.0, 10.0), p(0.0, 10.0)] {
            assert!(store.stop_at(&q).is_none(), "stop {q} must be gone");
        }
        // A double removal fails and changes nothing.
        assert!(!store.remove_route(eight));
        assert_eq!(store.rtree().len(), 2);

        // A pure self-loop with no sharing round-trips to empty.
        let mut solo = RouteStore::default();
        let r = solo
            .insert_route(vec![p(0.0, 0.0), p(1.0, 1.0), p(0.0, 0.0), p(2.0, 2.0)])
            .unwrap();
        assert!(solo.remove_route(r));
        assert_eq!(solo.rtree().len(), 0);
        assert!(solo.is_empty());
        solo.rtree().check_invariants().unwrap();
    }

    #[test]
    fn non_finite_routes_are_rejected_at_the_boundary() {
        let mut store = RouteStore::default();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(store.insert_route(vec![p(0.0, 0.0), p(bad, 1.0)]).is_none());
            assert!(store.insert_route(vec![p(0.0, bad), p(1.0, 1.0)]).is_none());
        }
        // A rejected route leaves no partial state behind.
        assert!(store.is_empty());
        assert_eq!(store.num_stops(), 0);
        assert!(store.rtree().is_empty());
        assert!(store.stop_at(&p(0.0, 0.0)).is_none());
        // bulk_build skips (and counts) non-finite sequences.
        let (bulk, skipped) = RouteStore::bulk_build(
            RTreeConfig::default(),
            vec![
                vec![p(0.0, 0.0), p(1.0, 0.0)],
                vec![p(0.0, 0.0), p(f64::NAN, 0.0)],
            ],
        );
        assert_eq!(skipped, 1);
        assert_eq!(bulk.num_routes(), 1);
    }

    #[test]
    fn empty_store_accessors() {
        let store = RouteStore::default();
        assert!(store.is_empty());
        assert_eq!(store.num_routes(), 0);
        assert!(store.route(RouteId(0)).is_none());
        assert!(store.route_points(RouteId(0)).is_empty());
        assert!(store.plist().is_empty());
        assert!(store.rtree().is_empty());
    }
}
