//! The transition store: TR-tree over transition endpoints.

use crate::ids::TransitionId;
use crate::types::{EndpointKind, Transition};
use rknnt_geo::Point;
use rknnt_rtree::{RTree, RTreeConfig};
use serde::{Deserialize, Serialize};

/// Payload of a TR-tree leaf entry: which transition the point belongs to
/// and whether it is the origin or the destination endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TransitionEndpoint {
    /// Transition the endpoint belongs to.
    pub transition: TransitionId,
    /// Origin or destination.
    pub kind: EndpointKind,
}

/// The transition store: owns the transitions and the TR-tree over their
/// endpoints (two entries per transition).
///
/// Transition data is dynamic — "old transitions expire and new transitions
/// arrive" — so both [`TransitionStore::insert`] and
/// [`TransitionStore::remove`] are first-class operations that keep the
/// TR-tree in sync.
#[derive(Debug, Clone)]
pub struct TransitionStore {
    transitions: Vec<Option<Transition>>,
    rtree: RTree<TransitionEndpoint>,
    live: usize,
}

impl Default for TransitionStore {
    fn default() -> Self {
        Self::new(RTreeConfig::default())
    }
}

impl TransitionStore {
    /// Creates an empty store whose TR-tree uses the given fan-out.
    pub fn new(config: RTreeConfig) -> Self {
        TransitionStore {
            transitions: Vec::new(),
            rtree: RTree::new(config),
            live: 0,
        }
    }

    /// Builds a store from `(origin, destination)` pairs, bulk-loading the
    /// TR-tree. Pairs with non-finite coordinates are skipped.
    pub fn bulk_build(config: RTreeConfig, pairs: Vec<(Point, Point)>) -> Self {
        let mut store = TransitionStore::new(config);
        let mut items = Vec::with_capacity(pairs.len() * 2);
        for (origin, destination) in pairs {
            if !origin.is_finite() || !destination.is_finite() {
                continue;
            }
            let id = TransitionId(store.transitions.len() as u32);
            store
                .transitions
                .push(Some(Transition::new(id, origin, destination)));
            store.live += 1;
            items.push((
                origin,
                TransitionEndpoint {
                    transition: id,
                    kind: EndpointKind::Origin,
                },
            ));
            items.push((
                destination,
                TransitionEndpoint {
                    transition: id,
                    kind: EndpointKind::Destination,
                },
            ));
        }
        store.rtree = RTree::bulk_load(config, items);
        store
    }

    /// Inserts a new transition and returns its id, or `None` when either
    /// endpoint has a non-finite coordinate (NaN/±inf points would poison
    /// TR-tree MBRs and the strict geometric predicates, so they are
    /// rejected at the store boundary without mutating anything).
    pub fn insert(&mut self, origin: Point, destination: Point) -> Option<TransitionId> {
        if !origin.is_finite() || !destination.is_finite() {
            return None;
        }
        let id = TransitionId(self.transitions.len() as u32);
        self.transitions
            .push(Some(Transition::new(id, origin, destination)));
        self.live += 1;
        self.rtree.insert(
            origin,
            TransitionEndpoint {
                transition: id,
                kind: EndpointKind::Origin,
            },
        );
        self.rtree.insert(
            destination,
            TransitionEndpoint {
                transition: id,
                kind: EndpointKind::Destination,
            },
        );
        Some(id)
    }

    /// Removes a transition (e.g. an expired passenger request). Returns
    /// `false` when the id is unknown or already removed.
    pub fn remove(&mut self, id: TransitionId) -> bool {
        let Some(slot) = self.transitions.get_mut(id.index()) else {
            return false;
        };
        let Some(t) = slot.take() else {
            return false;
        };
        self.live -= 1;
        self.rtree.remove(
            &t.origin,
            &TransitionEndpoint {
                transition: id,
                kind: EndpointKind::Origin,
            },
        );
        self.rtree.remove(
            &t.destination,
            &TransitionEndpoint {
                transition: id,
                kind: EndpointKind::Destination,
            },
        );
        true
    }

    /// The transition with the given id, if still present.
    pub fn get(&self, id: TransitionId) -> Option<&Transition> {
        self.transitions.get(id.index()).and_then(Option::as_ref)
    }

    /// Iterates over live transitions.
    pub fn transitions(&self) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter_map(Option::as_ref)
    }

    /// Ids of all live transitions.
    pub fn transition_ids(&self) -> Vec<TransitionId> {
        self.transitions().map(|t| t.id).collect()
    }

    /// Number of live transitions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// One past the largest raw transition id ever handed out (removed
    /// transitions keep their slot) — the transition-side analogue of
    /// [`crate::RouteStore::route_id_bound`]. The sharded service's recovery
    /// reconciliation uses it to tell which WAL-tail inserts a shard already
    /// applied before a crash.
    pub fn transition_id_bound(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the store holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The TR-tree over endpoints. Leaf payloads are [`TransitionEndpoint`]s.
    pub fn rtree(&self) -> &RTree<TransitionEndpoint> {
        &self.rtree
    }

    /// Exports the full logical state of the store, including the `None`
    /// slots of expired transitions (id assignment depends on slot count).
    /// The TR-tree is rebuilt deterministically by
    /// [`TransitionStore::from_state`], not serialized.
    pub fn export_state(&self) -> TransitionStoreState {
        TransitionStoreState {
            config: self.rtree.config(),
            transitions: self.transitions.clone(),
        }
    }

    /// Reconstructs a store from an exported state, validating ids and
    /// coordinates so a decoded-from-disk state can never panic the store.
    /// The TR-tree is bulk-loaded over live endpoints in ascending
    /// transition-id order (origin before destination).
    pub fn from_state(state: TransitionStoreState) -> Result<Self, String> {
        let TransitionStoreState {
            config,
            transitions,
        } = state;
        let mut items = Vec::new();
        let mut live = 0usize;
        for (i, slot) in transitions.iter().enumerate() {
            let Some(t) = slot else { continue };
            if t.id.index() != i {
                return Err(format!("transition slot {i} holds id {}", t.id));
            }
            if !t.origin.is_finite() || !t.destination.is_finite() {
                return Err(format!("transition {} has non-finite endpoints", t.id));
            }
            live += 1;
            items.push((
                t.origin,
                TransitionEndpoint {
                    transition: t.id,
                    kind: EndpointKind::Origin,
                },
            ));
            items.push((
                t.destination,
                TransitionEndpoint {
                    transition: t.id,
                    kind: EndpointKind::Destination,
                },
            ));
        }
        Ok(TransitionStore {
            transitions,
            rtree: RTree::bulk_load(config, items),
            live,
        })
    }
}

/// The full logical state of a [`TransitionStore`], as exported by
/// [`TransitionStore::export_state`]: the plain-data mirror the storage
/// engine's snapshot codec serializes.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionStoreState {
    /// Fan-out configuration of the TR-tree.
    pub config: RTreeConfig,
    /// Transition slots in id order; `None` marks an expired transition
    /// whose id stays consumed.
    pub transitions: Vec<Option<Transition>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut store = TransitionStore::default();
        let a = store.insert(p(0.0, 0.0), p(5.0, 5.0)).unwrap();
        let b = store.insert(p(1.0, 1.0), p(6.0, 6.0)).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.rtree().len(), 4, "two endpoints per transition");
        assert_eq!(store.get(a).unwrap().origin, p(0.0, 0.0));
        assert!(store.remove(a));
        assert!(!store.remove(a));
        assert_eq!(store.len(), 1);
        assert_eq!(store.rtree().len(), 2);
        assert!(store.get(a).is_none());
        assert!(store.get(b).is_some());
        assert_eq!(store.transition_ids(), vec![b]);
    }

    #[test]
    fn bulk_build_matches_incremental() {
        let pairs: Vec<(Point, Point)> = (0..100)
            .map(|i| {
                (
                    p(i as f64, (i * 7 % 13) as f64),
                    p((i * 3 % 29) as f64, i as f64 / 2.0),
                )
            })
            .collect();
        let bulk = TransitionStore::bulk_build(RTreeConfig::default(), pairs.clone());
        let mut incr = TransitionStore::default();
        for (o, d) in pairs {
            incr.insert(o, d).unwrap();
        }
        assert_eq!(bulk.len(), incr.len());
        assert_eq!(bulk.rtree().len(), incr.rtree().len());
        assert_eq!(bulk.rtree().len(), 200);
        // Same nearest endpoint for an arbitrary probe.
        let probe = p(17.0, 4.0);
        let nb = bulk.rtree().nearest(&probe).unwrap();
        let ni = incr.rtree().nearest(&probe).unwrap();
        assert!((nb.distance - ni.distance).abs() < 1e-9);
    }

    #[test]
    fn non_finite_endpoints_are_rejected_at_the_boundary() {
        let mut store = TransitionStore::default();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(store.insert(p(bad, 0.0), p(1.0, 1.0)).is_none());
            assert!(store.insert(p(0.0, 0.0), p(1.0, bad)).is_none());
        }
        assert!(store.is_empty());
        assert!(store.rtree().is_empty());
        // Ids are only consumed by accepted inserts.
        let id = store.insert(p(0.0, 0.0), p(1.0, 1.0)).unwrap();
        assert_eq!(id, TransitionId(0));
        // bulk_build silently skips non-finite pairs.
        let bulk = TransitionStore::bulk_build(
            RTreeConfig::default(),
            vec![
                (p(0.0, 0.0), p(1.0, 1.0)),
                (p(f64::NAN, 0.0), p(1.0, 1.0)),
                (p(0.0, 0.0), p(f64::INFINITY, 1.0)),
            ],
        );
        assert_eq!(bulk.len(), 1);
        assert_eq!(bulk.rtree().len(), 2);
    }

    #[test]
    fn degenerate_transition_same_origin_destination() {
        let mut store = TransitionStore::default();
        let id = store.insert(p(2.0, 2.0), p(2.0, 2.0)).unwrap();
        assert_eq!(store.rtree().len(), 2);
        assert!(store.remove(id));
        assert!(store.rtree().is_empty());
        assert!(store.is_empty());
    }
}
