//! Index layer for RkNNT query processing.
//!
//! Section 4.1.2 of the paper describes four index structures, all of which
//! live in this crate:
//!
//! * **RR-tree** — an R-tree over route points. Each leaf entry carries the
//!   identifier of the *stop* at that location; the [`PList`] maps a stop to
//!   the set of routes passing through it (the "crossover route set" of
//!   Definition 7), because in a real bus network one stop is shared by many
//!   routes.
//! * **TR-tree** — an R-tree over transition endpoints. Each leaf entry
//!   carries the transition id and whether it is the origin or destination
//!   point. Transitions are dynamic: [`TransitionStore::insert`] and
//!   [`TransitionStore::remove`] keep the TR-tree current as new passenger
//!   transitions arrive and old ones expire.
//! * **PList** — the inverted list from route point (stop) to route ids.
//! * **NList** — for every RR-tree node, the set of route ids appearing in
//!   the subtree below it, used by the verification phase to count how many
//!   distinct routes are closer to a candidate than the query.
//!
//! The stores own their R-trees and expose them read-only so the query
//! engines in `rknnt-core` can drive their own best-first traversals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ids;
mod nlist;
mod partition;
mod route_store;
mod transition_store;
mod types;

pub use ids::{RouteId, StopId, TransitionId};
pub use nlist::NList;
pub use partition::{
    global_route, global_transition, partition_routes, partition_transitions, IdSpace,
    RoutePartition, TransitionPartition,
};
pub use route_store::{PList, RouteStore, RouteStoreState};
pub use transition_store::{TransitionEndpoint, TransitionStore, TransitionStoreState};
pub use types::{EndpointKind, Route, Transition};
