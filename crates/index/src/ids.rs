//! Typed identifiers used across the index layer.
//!
//! All identifiers are thin `u32` newtypes: they index into dense arenas, so
//! `u32` keeps hot structures small (see the type-size guidance followed
//! throughout the workspace) while still addressing far more objects than the
//! paper's largest dataset (10M transitions).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Raw numeric value of the identifier.
            #[inline]
            pub fn raw(self) -> u32 {
                self.0
            }

            /// Value as a usize, for indexing into dense arenas.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

define_id!(
    /// Identifier of a route (a bus line) in a [`crate::RouteStore`].
    RouteId,
    "R"
);
define_id!(
    /// Identifier of a distinct route point (bus stop) in a
    /// [`crate::RouteStore`]. Several routes may share one stop.
    StopId,
    "S"
);
define_id!(
    /// Identifier of a passenger transition (origin/destination pair) in a
    /// [`crate::TransitionStore`].
    TransitionId,
    "T"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_and_convert() {
        assert_eq!(RouteId(7).to_string(), "R7");
        assert_eq!(StopId(3).to_string(), "S3");
        assert_eq!(TransitionId(11).to_string(), "T11");
        assert_eq!(RouteId::from(5u32).raw(), 5);
        assert_eq!(TransitionId(9).index(), 9usize);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(RouteId(1));
        s.insert(RouteId(1));
        s.insert(RouteId(2));
        assert_eq!(s.len(), 2);
        assert!(RouteId(1) < RouteId(2));
    }
}
