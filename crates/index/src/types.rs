//! Core data types: routes and transitions (Definitions 1 and 2).

use crate::ids::{RouteId, TransitionId};
use rknnt_geo::{travel_distance, Point, Rect};
use serde::{Deserialize, Serialize};

/// A route: an ordered sequence of at least two points (Definition 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Route {
    /// Identifier of the route within its store.
    pub id: RouteId,
    /// Ordered points of the route (bus stops along the line).
    pub points: Vec<Point>,
}

impl Route {
    /// Creates a route, validating that it has at least two points.
    ///
    /// Returns `None` when fewer than two points are supplied, matching
    /// Definition 1's `n >= 2` requirement.
    pub fn new(id: RouteId, points: Vec<Point>) -> Option<Self> {
        (points.len() >= 2).then_some(Route { id, points })
    }

    /// Number of points (stops) on the route.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Routes always have at least two points, so they are never empty;
    /// provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Travel distance ψ(R): sum of consecutive stop distances (Equation 6).
    pub fn travel_distance(&self) -> f64 {
        travel_distance(&self.points)
    }

    /// Minimum bounding rectangle of the route's points.
    pub fn mbr(&self) -> Rect {
        Rect::from_points(&self.points).unwrap_or_else(Rect::empty)
    }
}

/// A passenger transition: an origin point and a destination point
/// (Definition 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Identifier of the transition within its store.
    pub id: TransitionId,
    /// Origin point `t_o` (e.g. home).
    pub origin: Point,
    /// Destination point `t_d` (e.g. office).
    pub destination: Point,
}

impl Transition {
    /// Creates a transition.
    pub fn new(id: TransitionId, origin: Point, destination: Point) -> Self {
        Transition {
            id,
            origin,
            destination,
        }
    }

    /// The two endpoints in `[origin, destination]` order.
    pub fn endpoints(&self) -> [Point; 2] {
        [self.origin, self.destination]
    }

    /// The endpoint of the requested kind.
    pub fn endpoint(&self, kind: EndpointKind) -> Point {
        match kind {
            EndpointKind::Origin => self.origin,
            EndpointKind::Destination => self.destination,
        }
    }

    /// MBR covering both endpoints (the "maximum bounded box" of Sec. 4.1.1).
    pub fn mbr(&self) -> Rect {
        Rect::new(self.origin, self.destination)
    }
}

/// Which endpoint of a transition a TR-tree entry refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EndpointKind {
    /// The origin point `t_o`.
    Origin,
    /// The destination point `t_d`.
    Destination,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_requires_two_points() {
        assert!(Route::new(RouteId(0), vec![Point::new(0.0, 0.0)]).is_none());
        let r = Route::new(
            RouteId(0),
            vec![
                Point::new(0.0, 0.0),
                Point::new(3.0, 4.0),
                Point::new(3.0, 8.0),
            ],
        )
        .unwrap();
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert!((r.travel_distance() - 9.0).abs() < 1e-12);
        assert!(r.mbr().contains_point(&Point::new(3.0, 4.0)));
    }

    #[test]
    fn transition_endpoints_and_mbr() {
        let t = Transition::new(TransitionId(1), Point::new(1.0, 2.0), Point::new(-3.0, 5.0));
        assert_eq!(t.endpoints(), [Point::new(1.0, 2.0), Point::new(-3.0, 5.0)]);
        assert_eq!(t.endpoint(EndpointKind::Origin), t.origin);
        assert_eq!(t.endpoint(EndpointKind::Destination), t.destination);
        let mbr = t.mbr();
        assert!(mbr.contains_point(&t.origin));
        assert!(mbr.contains_point(&t.destination));
    }
}
