//! The NList: per-RR-tree-node list of route ids appearing beneath the node.
//!
//! The verification phase of the RkNNT algorithm (Section 4.2.3) counts how
//! many *distinct routes* are closer to a candidate transition point than the
//! query. When whole RR-tree nodes are known to be closer, their contribution
//! is the set of route ids under them — exactly what the NList stores. It is
//! built bottom-up from the RR-tree and the PList, as described in
//! Section 4.1.2.

use crate::ids::RouteId;
use crate::route_store::RouteStore;
use rknnt_rtree::NodeId;
use serde::{Deserialize, Serialize};

/// Per-node sorted, de-duplicated lists of route ids, packed in a CSR
/// (compressed sparse row) layout: one flat route-id vector plus one offset
/// range per node slot.
///
/// The verification hot path reads one node's list per pruned-whole subtree,
/// so the layout matters: a `Vec<Vec<RouteId>>` scatters the lists across
/// the heap (one allocation per node, pointer chase per lookup), while the
/// CSR pack keeps every list contiguous in one cache-friendly buffer and
/// [`NList::routes_under`] is two offset loads and a slice.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NList {
    /// `offsets[i]..offsets[i + 1]` indexes the list of node slot `i` in
    /// `routes`. Length is `node_id_bound + 1` (empty for an empty tree).
    offsets: Vec<u32>,
    /// All per-node lists, concatenated in node-slot order; each list is
    /// sorted and de-duplicated.
    routes: Vec<RouteId>,
}

impl NList {
    /// Builds the NList for the current state of `store`'s RR-tree.
    ///
    /// Rebuild after route insertions or removals; the query engines in
    /// `rknnt-core` construct it when they are created, so constructing a new
    /// engine after updating the store keeps everything consistent.
    pub fn build(store: &RouteStore) -> Self {
        let tree = store.rtree();
        let bound = tree.node_id_bound();
        // Build per-node lists first (construction-time allocations are
        // fine; the pack below is what the query path reads), then pack.
        let mut lists: Vec<Vec<RouteId>> = vec![Vec::new(); bound];
        if let Some(root) = tree.root() {
            Self::fill(store, root, &mut lists);
        }
        let total: usize = lists.iter().map(Vec::len).sum();
        // Hard assert in this cold build path: a silent `as u32` wrap would
        // make `routes_under` return wrong slices and corrupt verification.
        assert!(total <= u32::MAX as usize, "CSR offsets are u32");
        let mut offsets = Vec::with_capacity(bound + 1);
        let mut routes = Vec::with_capacity(total);
        offsets.push(0u32);
        for list in &lists {
            routes.extend_from_slice(list);
            offsets.push(routes.len() as u32);
        }
        NList { offsets, routes }
    }

    /// Recursively computes the list for `node` and returns it by value so
    /// parents can merge child lists.
    fn fill(
        store: &RouteStore,
        node: rknnt_rtree::NodeRef<'_, crate::ids::StopId>,
        lists: &mut Vec<Vec<RouteId>>,
    ) -> Vec<RouteId> {
        let mut routes: Vec<RouteId> = Vec::new();
        if node.is_leaf() {
            for entry in node.entries() {
                routes.extend_from_slice(store.crossover(entry.data));
            }
        } else {
            node.for_each_child(|child| {
                let child_routes = Self::fill(store, child, lists);
                routes.extend(child_routes);
            });
        }
        routes.sort_unstable();
        routes.dedup();
        lists[node.id().index()] = routes.clone();
        routes
    }

    /// Route ids appearing in the subtree rooted at `node`, as one
    /// contiguous slice of the CSR buffer. Empty for unknown nodes.
    #[inline]
    pub fn routes_under(&self, node: NodeId) -> &[RouteId] {
        let i = node.index();
        match (self.offsets.get(i), self.offsets.get(i + 1)) {
            (Some(&start), Some(&end)) => &self.routes[start as usize..end as usize],
            _ => &[],
        }
    }

    /// Number of node slots tracked (equals the RR-tree's node id bound at
    /// build time).
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the list tracks no nodes (empty RR-tree).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of route references across all node lists (the CSR
    /// buffer's length) — exposed for diagnostics and size accounting.
    pub fn num_route_refs(&self) -> usize {
        self.routes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rknnt_geo::Point;
    use rknnt_rtree::RTreeConfig;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    /// Builds a store with many routes so the RR-tree has several levels.
    fn grid_store() -> RouteStore {
        let mut routes = Vec::new();
        for i in 0..30 {
            let y = i as f64 * 10.0;
            routes.push(vec![
                p(0.0, y),
                p(10.0, y),
                p(20.0, y),
                p(30.0, y),
                p(40.0, y),
            ]);
        }
        let (store, skipped) = RouteStore::bulk_build(RTreeConfig::new(8, 3), routes);
        assert_eq!(skipped, 0);
        store
    }

    #[test]
    fn root_lists_every_route() {
        let store = grid_store();
        let nlist = NList::build(&store);
        let root = store.rtree().root().unwrap();
        let under_root = nlist.routes_under(root.id());
        assert_eq!(under_root.len(), store.num_routes());
    }

    #[test]
    fn node_lists_equal_union_of_leaf_crossovers() {
        let store = grid_store();
        let nlist = NList::build(&store);
        // Check every node by brute force: collect stops below it and union
        // their crossover sets.
        let mut stack = vec![store.rtree().root().unwrap()];
        while let Some(node) = stack.pop() {
            let mut expected: Vec<RouteId> = Vec::new();
            let mut inner = vec![node];
            while let Some(n) = inner.pop() {
                if n.is_leaf() {
                    for e in n.entries() {
                        expected.extend_from_slice(store.crossover(e.data));
                    }
                } else {
                    inner.extend(n.children());
                }
            }
            expected.sort_unstable();
            expected.dedup();
            assert_eq!(nlist.routes_under(node.id()), expected.as_slice());
            if !node.is_leaf() {
                stack.extend(node.children());
            }
        }
    }

    #[test]
    fn lists_are_sorted_and_unique() {
        let store = grid_store();
        let nlist = NList::build(&store);
        let root = store.rtree().root().unwrap();
        let list = nlist.routes_under(root.id());
        let mut sorted = list.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(list, sorted.as_slice());
    }

    #[test]
    fn empty_store_yields_empty_nlist() {
        let store = RouteStore::default();
        let nlist = NList::build(&store);
        assert!(nlist.is_empty());
        assert!(nlist.routes_under(NodeId::from_index(0)).is_empty());
        assert_eq!(nlist.len(), 0);
    }

    #[test]
    fn csr_pack_is_consistent() {
        let store = grid_store();
        let nlist = NList::build(&store);
        let tree = store.rtree();
        assert_eq!(nlist.len(), tree.node_id_bound());
        // Every node's slice lies inside the flat buffer and their total
        // length equals the buffer length (the lists tile the CSR pack).
        let mut total = 0usize;
        for i in 0..nlist.len() {
            total += nlist.routes_under(NodeId::from_index(i)).len();
        }
        assert_eq!(total, nlist.num_route_refs());
        // Out-of-range node ids are empty, not a panic.
        assert!(nlist
            .routes_under(NodeId::from_index(nlist.len() + 10))
            .is_empty());
    }

    #[test]
    fn shared_stop_contributes_all_its_routes() {
        let mut store = RouteStore::default();
        // Two routes crossing at (5, 5).
        store.insert_route(vec![p(0.0, 5.0), p(5.0, 5.0), p(10.0, 5.0)]);
        store.insert_route(vec![p(5.0, 0.0), p(5.0, 5.0), p(5.0, 10.0)]);
        let nlist = NList::build(&store);
        let root = store.rtree().root().unwrap();
        assert_eq!(nlist.routes_under(root.id()).len(), 2);
    }
}
