//! Deterministic fault injection: seeded failpoint plans.
//!
//! Robustness work is only trustworthy when failures can be *scheduled*
//! rather than waited for. This crate is the scheduling layer: a
//! [`FaultPlan`] is a seeded, declarative list of rules — "cut the
//! connection on its 3rd frame", "fail the 2nd fsync", "kill the shard at
//! frame 5" — compiled into an [`Failpoints`] handle that instrumented code
//! consults at named **sites**. A site is a stable string (`"net.client.write"`,
//! `"storage.wal.fsync"`, …) hit once per traversal; each rule fires on an
//! exact hit ordinal, so a plan replays identically on every run with no
//! sleeps, races, or real-clock dependence.
//!
//! The crate is hermetic and std-only. Production code pays one atomic load
//! per site when no plan is armed (`Failpoints::hit` on an empty handle is a
//! counter bump and a `None`); the injection actions themselves are
//! interpreted by the instrumented layer — this crate only decides *whether*
//! and *what*, never *how*.
//!
//! ```
//! use rknnt_fault::{FaultAction, FaultPlan};
//!
//! let fp = FaultPlan::new(0xC0FFEE)
//!     .cut("net.client.write", 3)
//!     .fail("storage.wal.fsync", 2, "injected fsync failure")
//!     .arm();
//! assert!(fp.hit("net.client.write").is_none()); // 1st hit: clean
//! assert!(fp.hit("net.client.write").is_none()); // 2nd hit: clean
//! assert!(matches!(
//!     fp.hit("net.client.write"),                // 3rd hit: fires
//!     Some(FaultAction::Cut { .. })
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What an armed rule injects when its site reaches the trigger ordinal.
/// The instrumented layer interprets the action; unknown-to-it actions are
/// ignored (a plan written for the client is harmless if armed on a server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Sever the connection / stream at this site. When `after` is set,
    /// deliver only the first `after` bytes of the in-flight frame first —
    /// a mid-frame cut, the classic torn write.
    Cut {
        /// Bytes of the current frame to deliver before severing.
        after: Option<usize>,
    },
    /// Flip bits in the in-flight frame: XOR the byte at `offset` (clamped
    /// to the last frame byte) with `mask` before it reaches the wire.
    Corrupt {
        /// Byte offset into the frame (clamped to its last byte).
        offset: usize,
        /// XOR mask; the interpreting layer normalises `0` to a nonzero
        /// mask so corruption never degenerates into a no-op.
        mask: u8,
    },
    /// A logical delay of `nanos`. Interpreted against the layer's pluggable
    /// clock (or recorded by a mock sleeper) — never a real `thread::sleep`
    /// in tests.
    Delay {
        /// Nanoseconds of injected latency.
        nanos: u64,
    },
    /// Fail the operation with a typed error carrying this message
    /// (e.g. a failed fsync or a refused write).
    Fail {
        /// Message the synthesized error carries.
        message: String,
    },
    /// Kill the component hosting the site: a server stops accepting,
    /// severs every connection, and its executor exits.
    Kill,
    /// Panic the thread that hits the site (exercises panic containment).
    Panic {
        /// Panic payload message.
        message: String,
    },
}

/// One declarative rule: at hit number `at` (1-based) of `site`, inject
/// `action`.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// The site the rule watches.
    pub site: String,
    /// 1-based hit ordinal at which the rule fires.
    pub at: u64,
    /// What to inject.
    pub action: FaultAction,
}

/// A seeded, declarative schedule of failures. Build with the fluent
/// methods, then [`FaultPlan::arm`] it into the shareable [`Failpoints`]
/// handle the instrumented layers consult.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with a seed (the seed feeds [`Failpoints::next_u64`],
    /// used by tests to derive corruption offsets/masks deterministically).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds an explicit rule.
    pub fn rule(mut self, site: &str, at: u64, action: FaultAction) -> Self {
        self.rules.push(FaultRule {
            site: site.to_string(),
            at: at.max(1),
            action,
        });
        self
    }

    /// Cut the connection cleanly at hit `at` of `site`.
    pub fn cut(self, site: &str, at: u64) -> Self {
        self.rule(site, at, FaultAction::Cut { after: None })
    }

    /// Cut the connection mid-frame at hit `at`, delivering `after` bytes.
    pub fn cut_mid_frame(self, site: &str, at: u64, after: usize) -> Self {
        self.rule(site, at, FaultAction::Cut { after: Some(after) })
    }

    /// Corrupt the in-flight frame at hit `at`.
    pub fn corrupt(self, site: &str, at: u64, offset: usize, mask: u8) -> Self {
        self.rule(site, at, FaultAction::Corrupt { offset, mask })
    }

    /// Inject a logical delay at hit `at`.
    pub fn delay(self, site: &str, at: u64, nanos: u64) -> Self {
        self.rule(site, at, FaultAction::Delay { nanos })
    }

    /// Fail the operation at hit `at` with a typed error.
    pub fn fail(self, site: &str, at: u64, message: &str) -> Self {
        self.rule(
            site,
            at,
            FaultAction::Fail {
                message: message.to_string(),
            },
        )
    }

    /// Kill the hosting component at hit `at`.
    pub fn kill(self, site: &str, at: u64) -> Self {
        self.rule(site, at, FaultAction::Kill)
    }

    /// Panic the hitting thread at hit `at`.
    pub fn panic_at(self, site: &str, at: u64, message: &str) -> Self {
        self.rule(
            site,
            at,
            FaultAction::Panic {
                message: message.to_string(),
            },
        )
    }

    /// The rules added so far.
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Compiles the plan into a shareable, thread-safe handle.
    pub fn arm(self) -> Arc<Failpoints> {
        Arc::new(Failpoints::from_plan(self))
    }
}

/// Per-site armed state: the hit counter plus the rules watching it.
#[derive(Debug, Default)]
struct SiteState {
    hits: u64,
    /// `(ordinal, action)` pairs, each consumed at most once.
    pending: Vec<(u64, FaultAction)>,
}

/// The armed form of a [`FaultPlan`]: shareable across threads, consulted
/// at sites via [`Failpoints::hit`]. Every consultation is counted, fired
/// or not, so tests can assert a site was actually traversed.
#[derive(Debug, Default)]
pub struct Failpoints {
    sites: Mutex<HashMap<String, SiteState>>,
    injected: AtomicU64,
    rng: AtomicU64,
}

impl Failpoints {
    /// A handle with no rules: every `hit` counts and returns `None`.
    pub fn none() -> Arc<Failpoints> {
        Arc::new(Failpoints::default())
    }

    fn from_plan(plan: FaultPlan) -> Failpoints {
        let mut sites: HashMap<String, SiteState> = HashMap::new();
        for rule in plan.rules {
            sites
                .entry(rule.site)
                .or_default()
                .pending
                .push((rule.at, rule.action));
        }
        Failpoints {
            sites: Mutex::new(sites),
            injected: AtomicU64::new(0),
            // splitmix64 wants a nonzero-ish stream; any seed works, but
            // keep 0 distinguishable from 1.
            rng: AtomicU64::new(plan.seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Registers one traversal of `site`. Returns the action to inject when
    /// a rule's ordinal matches this hit, `None` otherwise. A fired rule is
    /// consumed — rules are one-shot by construction, so a retried
    /// operation succeeds unless the plan says otherwise.
    pub fn hit(&self, site: &str) -> Option<FaultAction> {
        let mut sites = self.sites.lock().expect("failpoint table poisoned");
        let state = sites.entry(site.to_string()).or_default();
        state.hits += 1;
        let now = state.hits;
        let slot = state.pending.iter().position(|(at, _)| *at == now)?;
        let (_, action) = state.pending.swap_remove(slot);
        self.injected.fetch_add(1, Ordering::Relaxed);
        Some(action)
    }

    /// Traversals of `site` observed so far (fired or not).
    pub fn hits(&self, site: &str) -> u64 {
        self.sites
            .lock()
            .expect("failpoint table poisoned")
            .get(site)
            .map(|s| s.hits)
            .unwrap_or(0)
    }

    /// Total actions injected so far across every site.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Rules armed but not yet fired (a test's "did everything I scheduled
    /// actually happen" check).
    pub fn unfired(&self) -> usize {
        self.sites
            .lock()
            .expect("failpoint table poisoned")
            .values()
            .map(|s| s.pending.len())
            .sum()
    }

    /// The next value of the plan's seeded splitmix64 stream — shared
    /// deterministic randomness for deriving corruption offsets, masks, or
    /// jitter in tests without touching the real RNG or clock.
    pub fn next_u64(&self) -> u64 {
        // fetch_add returns the pre-add state; mix the post-add value so the
        // stream matches the free-standing [`splitmix64`] step for step.
        let mut x = self
            .rng
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

/// Standalone splitmix64 step, for seeded jitter streams that live outside
/// an armed plan (e.g. retry backoff in the connection pool).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *state;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rules_fire_on_their_exact_ordinal_and_only_once() {
        let fp = FaultPlan::new(7)
            .cut("a", 2)
            .fail("a", 4, "boom")
            .kill("b", 1)
            .arm();
        assert_eq!(fp.hit("a"), None);
        assert_eq!(fp.hit("a"), Some(FaultAction::Cut { after: None }));
        assert_eq!(fp.hit("a"), None);
        assert_eq!(
            fp.hit("a"),
            Some(FaultAction::Fail {
                message: "boom".into()
            })
        );
        assert_eq!(fp.hit("a"), None);
        assert_eq!(fp.hit("b"), Some(FaultAction::Kill));
        assert_eq!(fp.hits("a"), 5);
        assert_eq!(fp.hits("b"), 1);
        assert_eq!(fp.injected(), 3);
        assert_eq!(fp.unfired(), 0);
    }

    #[test]
    fn unarmed_sites_count_but_never_fire() {
        let fp = Failpoints::none();
        for _ in 0..100 {
            assert_eq!(fp.hit("anything"), None);
        }
        assert_eq!(fp.hits("anything"), 100);
        assert_eq!(fp.injected(), 0);
    }

    #[test]
    fn seeded_stream_is_deterministic_per_seed() {
        let a = FaultPlan::new(42).arm();
        let b = FaultPlan::new(42).arm();
        let c = FaultPlan::new(43).arm();
        let draw = |fp: &Failpoints| (0..8).map(|_| fp.next_u64()).collect::<Vec<_>>();
        assert_eq!(draw(&a), draw(&b));
        assert_ne!(draw(&a), draw(&c));
        let mut s = 42u64 ^ 0x9E37_79B9_7F4A_7C15;
        // The free function walks the same stream as the handle.
        let direct: Vec<u64> = (0..8).map(|_| splitmix64(&mut s)).collect();
        assert_eq!(draw(&FaultPlan::new(42).arm()), direct);
    }

    #[test]
    fn concurrent_hits_fire_each_rule_exactly_once() {
        let fp = FaultPlan::new(1).cut("s", 50).arm();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let fp = Arc::clone(&fp);
            handles.push(std::thread::spawn(move || {
                let mut fired = 0;
                for _ in 0..25 {
                    if fp.hit("s").is_some() {
                        fired += 1;
                    }
                }
                fired
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 1, "exactly one thread observes the injection");
        assert_eq!(fp.hits("s"), 100);
    }

    #[test]
    fn ordinal_zero_is_clamped_to_first_hit() {
        let fp = FaultPlan::new(0).cut("s", 0).arm();
        assert_eq!(fp.hit("s"), Some(FaultAction::Cut { after: None }));
    }
}
