//! Cross-crate integration tests: generated city → index layer → RkNNT
//! engines → graph → route planners, exercised through the public API of the
//! umbrella crate exactly the way the examples and the benchmark harness use
//! it.

use rknnt::core::RknnTEngine;
use rknnt::data::workload;
use rknnt::prelude::*;
use rknnt::routeplan::{BruteForcePlanner, PlanQuery, PruningPlanner};

fn build_world(seed: u64, transitions: usize) -> (rknnt::data::City, RouteStore, TransitionStore) {
    let city = CityGenerator::new(CityConfig::small(seed)).generate();
    let routes = city.route_store();
    let store = TransitionGenerator::new(TransitionConfig::checkin_like(transitions, seed ^ 0xabc))
        .generate_store(&city);
    (city, routes, store)
}

#[test]
fn capacity_estimation_pipeline_is_consistent_across_engines() {
    let (city, routes, transitions) = build_world(3, 3_000);
    let queries = workload::rknnt_queries(&city, 5, 5, 1_000.0, 9);
    let brute = BruteForceEngine::new(&routes, &transitions);
    let fr = FilterRefineEngine::new(&routes, &transitions);
    let vo = VoronoiEngine::new(&routes, &transitions);
    let dc = DivideConquerEngine::new(&routes, &transitions);
    for (i, q) in queries.into_iter().enumerate() {
        for semantics in [Semantics::Exists, Semantics::ForAll] {
            let query = RknntQuery {
                route: q.clone(),
                k: 5,
                semantics,
            };
            let expected = brute.execute(&query).transitions;
            assert_eq!(fr.execute(&query).transitions, expected, "query {i} FR");
            assert_eq!(vo.execute(&query).transitions, expected, "query {i} VO");
            assert_eq!(dc.execute(&query).transitions, expected, "query {i} DC");
        }
    }
}

#[test]
fn dynamic_stream_of_transitions_keeps_answers_fresh() {
    let (city, routes, _) = build_world(5, 0);
    let mut store = TransitionStore::default();
    let watched = city.routes[0].clone();
    let query = RknntQuery::exists(watched.clone(), 3);

    // Empty store: no passengers.
    let empty = FilterRefineEngine::new(&routes, &store).execute(&query);
    assert!(empty.is_empty());

    // Insert passengers right on top of the watched route's stops: they must
    // all appear; then remove half and check the count drops accordingly.
    let mut inserted = Vec::new();
    for (i, stop) in watched.iter().enumerate().take(10) {
        let origin = Point::new(stop.x + 5.0, stop.y + 5.0);
        let destination = Point::new(
            watched[(i + 1) % watched.len()].x - 5.0,
            watched[(i + 1) % watched.len()].y - 5.0,
        );
        inserted.push(store.insert(origin, destination).expect("finite endpoints"));
    }
    let full = FilterRefineEngine::new(&routes, &store).execute(&query);
    assert_eq!(full.len(), inserted.len());
    for id in inserted.iter().step_by(2) {
        assert!(store.remove(*id));
    }
    let half = FilterRefineEngine::new(&routes, &store).execute(&query);
    assert_eq!(half.len(), inserted.len() - inserted.len().div_ceil(2));
}

#[test]
fn route_planning_pipeline_agrees_between_planners() {
    let (city, routes, transitions) = build_world(7, 2_000);
    let graph = city.graph();
    let config = PlannerConfig {
        k: 3,
        max_candidate_paths: 1_000,
    };
    let pre = Precomputation::build(&graph, &routes, &transitions, config.k);
    let brute = BruteForcePlanner::new(&graph, &routes, &transitions, config);
    let pruning = PruningPlanner::new(&graph, &pre);
    let pairs = workload::plan_queries(&graph, 3, 3_000.0, 2_000.0, 11);
    assert!(!pairs.is_empty());
    for (start, end) in pairs {
        let shortest = pre.matrix().distance(start, end);
        if !shortest.is_finite() {
            continue;
        }
        let query = PlanQuery {
            start,
            end,
            tau: shortest * 1.3,
        };
        for objective in [Objective::Maximize, Objective::Minimize] {
            let a = brute.plan(&query, objective);
            let b = pruning.plan(&query, objective);
            assert_eq!(
                a.passenger_count(),
                b.passenger_count(),
                "{start}->{end} {objective:?}"
            );
            if let Some(route) = &b.route {
                assert!(route.length <= query.tau + 1e-9);
                assert_eq!(route.vertices.first(), Some(&start));
                assert_eq!(route.vertices.last(), Some(&end));
            }
        }
    }
}

#[test]
fn removing_the_query_route_changes_results_like_fig16_setup() {
    // Figure 16 uses every existing route as a query after removing it from
    // the RR-tree; check the removal path end to end.
    let (city, _routes, transitions) = build_world(13, 2_000);
    let mut store_with = RouteStore::default();
    for r in &city.routes {
        store_with.insert_route(r.clone());
    }
    let target = store_with.route_ids()[0];
    let query_route = store_with.route(target).unwrap().points.clone();
    let with = FilterRefineEngine::new(&store_with, &transitions)
        .execute(&RknntQuery::exists(query_route.clone(), 1));
    // Remove the route that is identical to the query: now the query no
    // longer competes with itself, so the result can only grow.
    let mut store_without = store_with.clone();
    assert!(store_without.remove_route(target));
    let without = FilterRefineEngine::new(&store_without, &transitions)
        .execute(&RknntQuery::exists(query_route, 1));
    assert!(without.len() >= with.len());
}

#[test]
fn csv_roundtrip_preserves_query_answers() {
    let (city, routes, transitions) = build_world(17, 1_500);
    // Export and re-import both datasets, then compare one query's answer.
    let mut route_csv = Vec::new();
    rknnt::data::io::write_routes(&mut route_csv, &city.routes).unwrap();
    let reread_routes = rknnt::data::io::read_routes(route_csv.as_slice()).unwrap();
    let (routes2, skipped) =
        RouteStore::bulk_build(rknnt::rtree::RTreeConfig::default(), reread_routes);
    assert_eq!(skipped, 0);

    let pairs: Vec<(Point, Point)> = transitions
        .transitions()
        .map(|t| (t.origin, t.destination))
        .collect();
    let mut transition_csv = Vec::new();
    rknnt::data::io::write_transitions(&mut transition_csv, &pairs).unwrap();
    let reread = rknnt::data::io::read_transitions(transition_csv.as_slice()).unwrap();
    let transitions2 = TransitionStore::bulk_build(rknnt::rtree::RTreeConfig::default(), reread);

    let query = RknntQuery::exists(city.routes[1].clone(), 5);
    let before = VoronoiEngine::new(&routes, &transitions).execute(&query);
    let after = VoronoiEngine::new(&routes2, &transitions2).execute(&query);
    assert_eq!(before.transitions, after.transitions);
}
