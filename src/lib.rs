//! # rknnt — Reverse k Nearest Neighbor search over trajectories
//!
//! Umbrella crate re-exporting the whole workspace:
//!
//! * [`geo`] — geometry primitives (points, MBRs, half-space and Voronoi
//!   filtering predicates).
//! * [`rtree`] — the from-scratch dynamic R-tree substrate.
//! * [`index`] — the paper's index layer: route store (RR-tree), transition
//!   store (TR-tree), `PList` and `NList`.
//! * [`core`] — the RkNNT query engines (filter–refine, Voronoi,
//!   divide & conquer, brute force oracle).
//! * [`graph`] — the bus-network graph substrate (Dijkstra, Floyd–Warshall,
//!   Yen's k-shortest paths).
//! * [`routeplan`] — MaxRkNNT / MinRkNNT optimal route planning.
//! * [`data`] — synthetic city, route and transition generators plus
//!   workload generators for the evaluation.
//! * [`service`] — the serving layer: concurrent batch query execution with
//!   engine-selection policy, shared-filter batching, a seeded LRU result
//!   cache, and `ShardedService` — Z-order spatial shards behind a
//!   footprint-pruned router, byte-identical to one service.
//! * [`storage`] — the durable storage engine: checksummed snapshots plus a
//!   segmented write-ahead log with crash recovery, behind
//!   `QueryService::open` / `attach_storage` / `checkpoint`.
//! * [`obs`] — hermetic telemetry: log-linear latency histograms, stage
//!   spans over a pluggable clock, a metrics registry with text exposition
//!   and snapshot diffing, and a flight recorder of recent pipeline events.
//! * [`net`] — the TCP serving edge: a length-prefixed checksummed binary
//!   protocol, a threaded server multiplexing connections onto the batch
//!   path with cost-based admission control (overload is shed with a typed
//!   reply, never silently dropped), a blocking client with typed read
//!   timeouts, and the distributed shard fleet — `RemoteShard` dispatch
//!   (deadlines, seeded retry backoff, circuit breaker) under a
//!   `FleetRouter` that degrades to typed partial results when shards die
//!   and resyncs them from its update log on recovery.
//! * [`fault`] — deterministic fault injection: seeded, hermetic
//!   failpoints (`FaultPlan` → `Failpoints`) threaded through the net and
//!   storage crates so crashes, cuts, corruption and stalls are
//!   reproducible test inputs.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the architecture and
//! per-experiment index.

pub use rknnt_core as core;
pub use rknnt_data as data;
pub use rknnt_fault as fault;
pub use rknnt_geo as geo;
pub use rknnt_graph as graph;
pub use rknnt_index as index;
pub use rknnt_net as net;
pub use rknnt_obs as obs;
pub use rknnt_routeplan as routeplan;
pub use rknnt_rtree as rtree;
pub use rknnt_service as service;
pub use rknnt_storage as storage;

/// Commonly used items, suitable for `use rknnt::prelude::*;`.
pub mod prelude {
    pub use rknnt_core::{
        BruteForceEngine, DivideConquerEngine, EngineKind, FilterRefineEngine, QueryScratch,
        RknnTEngine, RknntQuery, Semantics, VoronoiEngine,
    };
    pub use rknnt_data::{CityConfig, CityGenerator, TransitionConfig, TransitionGenerator};
    pub use rknnt_fault::{Failpoints, FaultPlan};
    pub use rknnt_geo::{Point, Rect};
    pub use rknnt_graph::RouteGraph;
    pub use rknnt_index::{RouteId, RouteStore, TransitionId, TransitionStore};
    pub use rknnt_net::{
        Backend, Client, FleetConfig, FleetResult, FleetRouter, RemoteShardConfig, Reply, Server,
        ServerConfig,
    };
    pub use rknnt_routeplan::{Objective, PlannerConfig, Precomputation, RoutePlanner};
    pub use rknnt_service::{
        BatchStats, DeltaReason, EnginePolicy, QueryService, ServiceConfig, ShardedConfig,
        ShardedService, SubscriptionDelta, SubscriptionId,
    };
    pub use rknnt_storage::{StorageConfig, StorageError, StorageStats};
}
